"""Real multiprocess SPMD backend for the distributed block Schur
algorithm.

Where :mod:`repro.parallel.driver` runs the paper's Section-7 programs on
the *simulated* T3D, this module runs them for real: one OS process per
PE, the ``2m × mp`` generator in a shared segment (the stand-in for the
T3D's globally addressable memory, created through the pluggable
:mod:`repro.parallel.transport` layer — ``shared_memory`` by default),
and the same three data distributions deciding which PE owns which block
columns (Versions 1/2) or column chunks (Version 3).

Three SPMD programs run here:

* the **bulk** factorization schedule — the per-step structure of
  :mod:`repro.parallel.spmd` exactly: shift, barrier, broadcast the
  pivot panel, replicated build, apply, barrier;
* the **lookahead** factorization schedule — the Section-6.5/7 pipelined
  variant of :mod:`repro.parallel.lookahead` ported to real processes:
  no global barriers at all.  Blocks advance independently through
  write-once slots (the ``("up", s, j)`` messages), the transformed
  pivot row travels point-to-point down the pivot chain, and the block
  transformation ``U_i`` is built **once** at the pivot owner and
  shipped (pickled) to the other PEs — so the serial generator build
  overlaps the application work instead of idling every PE behind a
  per-step barrier, and is no longer replicated ``NP``-fold;
* the **triangular solve** program — the distributed forward/backward
  sweeps of :mod:`repro.parallel.spmd_solve` for vector and ``n × k``
  panel right-hand sides, with per-PE level-3 sweeps over each PE's
  local columns.

Communication volume is *counted* with the same formulas the simulator
charges (shift words per put, §6.3 transform words per broadcast,
``m·k`` words per solve collective), so the counters of a real run and a
simulated run of the same plan are directly comparable — see
:meth:`~repro.machine.simulator.MachineReport.words_by_rank` and
:meth:`~repro.machine.simulator.MachineReport.broadcast_words_by_rank`.

Workers time their phases (shift / broadcast / blocking / application /
barrier / wait / gather) and ship the accounting back over a queue; the
parent reconstructs per-PE spans that merge into the observability
pipeline (:func:`repro.obs.adopt_span`, the unified JSONL schema with
the ``rank`` field set).

Everything degrades gracefully: :func:`multiprocess_available` probes
the platform (``/dev/shm``, semaphores; ``REPRO_MP_DISABLE=1`` forces it
off) and the engine falls back to the simulated backend — with the
reason recorded — when the probe fails.  Shared segments are owned by a
:class:`~repro.parallel.transport.TransportSession` whose cleanup runs
unconditionally, so a worker dying mid-step cannot leak ``/dev/shm``
segments (``REPRO_MP_CRASH=rank:stage`` injects such deaths for the
leak tests).
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.core.generator import spd_generator
from repro.core.schur_spd import eliminate_block
from repro.errors import (
    DistributionError,
    MultiprocessUnavailableError,
    NotPositiveDefiniteError,
    ShapeError,
)
from repro.obs.export import merge_rank_traces, span_records
from repro.obs.schema import SOURCE_MULTIPROCESS
from repro.obs.spans import Span
from repro.parallel import costs
from repro.parallel.distributions import (
    BlockCyclicLayout,
    SpreadLayout,
    make_layout,
)
from repro.parallel.spmd import build_partial_transform
from repro.parallel.transport import get_transport
from repro.toeplitz.block_toeplitz import SymmetricBlockToeplitz
from repro.utils.lintools import solve_upper_triangular

__all__ = [
    "MPRun",
    "MPSolveRun",
    "mp_factorization",
    "mp_triangular_solve",
    "multiprocess_available",
    "SCHEDULES",
]

#: Seconds a worker waits at a barrier (or on a lookahead slot) before
#: declaring the run wedged.
_BARRIER_TIMEOUT = 300.0

#: Legal values of the factorization schedule.
SCHEDULES = ("bulk", "lookahead")

#: Pickle-slot bytes reserved per step for the shipped ``U_i`` — sized
#: far above the few-KB reflector payloads (measured ~2.5 KB at m=8).
def _u_slot_bytes(m: int) -> int:
    return 256 * m * m + 16384


# ----------------------------------------------------------------------
# Availability
# ----------------------------------------------------------------------
def _mp_context():
    return get_transport("shared_memory").context()


def multiprocess_available(*, refresh: bool = False,
                           transport: str = "shared_memory"
                           ) -> tuple[bool, str]:
    """Whether the real multiprocess backend can run here.

    Returns ``(ok, reason)``; ``reason`` explains a ``False`` (it is the
    string the engine records when it falls back to simulation).  The
    platform probe — can the named transport create segments and
    semaphores? — is cached per transport; ``REPRO_MP_DISABLE`` (any
    truthy value) short-circuits it, which is also the tested fallback
    path.
    """
    if os.environ.get("REPRO_MP_DISABLE", "").lower() not in \
            ("", "0", "false"):
        return False, "disabled by REPRO_MP_DISABLE"
    try:
        tr = get_transport(transport)
    except DistributionError as exc:
        return False, str(exc)
    return tr.probe(refresh=refresh) if transport == "shared_memory" \
        else tr.probe()


# ----------------------------------------------------------------------
# Worker programs (module level: importable under the spawn method)
# ----------------------------------------------------------------------
class _Phases:
    """Tiny phase-time accumulator (perf_counter is monotonic and —
    on Linux — shares its epoch across processes, so parent-side span
    rendering lines the workers up correctly)."""

    __slots__ = ("acc", "_t0")

    def __init__(self):
        self.acc: dict[str, float] = {}
        self._t0 = 0.0

    def start(self):
        self._t0 = time.perf_counter()

    def stop(self, name: str):
        self.acc[name] = self.acc.get(name, 0.0) + \
            (time.perf_counter() - self._t0)


def _maybe_crash(rank: int, stage: str) -> None:
    """Crash-injection hook: ``REPRO_MP_CRASH=rank:stage`` makes that
    worker die hard (``os._exit``) at the named stage — before attaching
    (``spawn``) or after attaching but before any synchronization
    (``attach``).  Exercises the parent's segment-cleanup guarantees."""
    if os.environ.get("REPRO_MP_CRASH", "") == f"{rank}:{stage}":
        os._exit(3)


def _finish(rank, queue, t_start, phases, attrs):
    attrs["rank"] = rank
    queue.put((rank, {
        "ok": True, "rank": rank,
        "start": t_start, "end": time.perf_counter(),
        "phases": phases.acc, "attrs": attrs,
    }))


def _fail(rank, queue, barrier, exc, poison=None):
    from repro.errors import BreakdownError, NotPositiveDefiniteError
    kind = "breakdown" if isinstance(
        exc, (BreakdownError, NotPositiveDefiniteError)) else "error"
    if poison is not None:
        try:
            poison[0] = 1    # release peers spinning on lookahead slots
        except Exception:
            pass
    if barrier is not None:
        try:
            barrier.abort()   # release peers parked on the barrier
        except Exception:
            pass
    queue.put((rank, {"ok": False, "kind": kind,
                      "error": f"{exc}\n{traceback.format_exc()}"}))


def _close_all(attachments) -> None:
    for att in attachments:
        if att is not None:
            att.close()


def _block_cyclic_worker(rank, nproc, tname, gen_h, r_h, m, p, w, layout,
                         representation, collect, barrier, queue):
    """One PE of the Versions-1/2 bulk program on shared segments."""
    atts = []
    try:
        _maybe_crash(rank, "spawn")
        tr = get_transport(tname)
        gen_att = tr.attach(gen_h)
        atts.append(gen_att)
        gen = gen_att.array
        r = None
        if collect:
            r_att = tr.attach(r_h)
            atts.append(r_att)
            r = r_att.array
        _maybe_crash(rank, "attach")
        my_blocks = layout.blocks_of(rank, p)
        phases = _Phases()
        shift_words = shift_messages = 0
        bcast_words = 0
        t_start = time.perf_counter()

        def upper(j):
            return gen[:m, j * m:(j + 1) * m]

        def lower(j):
            return gen[m:, j * m:(j + 1) * m]

        def wait():
            phases.start()
            barrier.wait(timeout=_BARRIER_TIMEOUT)
            phases.stop("barrier")

        if collect:
            phases.start()
            for j in my_blocks:
                r[0:m, j * m:(j + 1) * m] = upper(j)
            phases.stop("gather")
        wait()

        for i in range(1, p):
            # -------- shift: copy aside, barrier, put into j+1 slots --
            live = [j for j in my_blocks if i - 1 <= j <= p - 2]
            phases.start()
            moved = [(j + 1, upper(j).copy()) for j in live]
            crossings = sum(1 for j in live
                            if layout.owner(j + 1) != rank)
            shift_words += crossings * m * m
            shift_messages += crossings
            phases.stop("shift")
            wait()
            phases.start()
            for tgt, blk in moved:
                upper(tgt)[:] = blk       # shmem put (maybe foreign slot)
            phases.stop("shift")
            wait()

            # -------- broadcast: snapshot the pivot panel -------------
            phases.start()
            up_c = upper(i).copy()
            low_c = lower(i).copy()
            bcast_words += costs.transform_words(representation, m) + m
            phases.stop("broadcast")
            wait()

            # -------- build (replicated) ------------------------------
            phases.start()
            collected: list = []
            eliminate_block(up_c, low_c, w, representation=representation,
                            panel=None, pivot_sign_fixup=False,
                            collect=collected)
            u_block = collected[0]
            negrows = np.nonzero(np.diag(up_c) < 0)[0]
            if negrows.size:
                up_c[negrows] *= -1.0
            if layout.owner(i) == rank:
                upper(i)[:] = up_c
                lower(i)[:] = 0.0
            phases.stop("blocking")

            # -------- apply to own trailing blocks --------------------
            phases.start()
            for j in my_blocks:
                if j > i:
                    u_block.apply_pair(upper(j), lower(j))
                    if negrows.size:
                        upper(j)[negrows] *= -1.0
            phases.stop("application")

            if collect:
                phases.start()
                for j in my_blocks:
                    if j >= i:
                        r[i * m:(i + 1) * m, j * m:(j + 1) * m] = upper(j)
                phases.stop("gather")
            wait()

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_blocks), "steps": p - 1,
            "shift_words": shift_words,
            "shift_messages": shift_messages,
            "broadcast_words": bcast_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, barrier, exc)
    finally:
        _close_all(atts)


def _spread_worker(rank, nproc, tname, gen_h, r_h, m, p, w, layout,
                   representation, collect, barrier, queue):
    """One PE of the Version-3 (spread) program on shared segments."""
    atts = []
    try:
        _maybe_crash(rank, "spawn")
        tr = get_transport(tname)
        gen_att = tr.attach(gen_h)
        atts.append(gen_att)
        gen = gen_att.array
        r = None
        if collect:
            r_att = tr.attach(r_h)
            atts.append(r_att)
            r = r_att.array
        _maybe_crash(rank, "attach")
        s = layout.spread
        mc = layout.chunk_width(m)
        my_chunks = layout.chunks_of(rank, p)
        phases = _Phases()
        shift_words = shift_messages = 0
        bcast_words = 0
        t_start = time.perf_counter()

        def col0(j, c):
            return j * m + c * mc

        def upper(j, c):
            return gen[:m, col0(j, c):col0(j, c) + mc]

        def lower(j, c):
            return gen[m:, col0(j, c):col0(j, c) + mc]

        def wait():
            phases.start()
            barrier.wait(timeout=_BARRIER_TIMEOUT)
            phases.stop("barrier")

        if collect:
            phases.start()
            for (j, c) in my_chunks:
                r[0:m, col0(j, c):col0(j, c) + mc] = upper(j, c)
            phases.stop("gather")
        wait()

        for i in range(1, p):
            # -------- shift -------------------------------------------
            live = [(j, c) for (j, c) in my_chunks if i - 1 <= j <= p - 2]
            phases.start()
            moved = [((j + 1, c), upper(j, c).copy()) for (j, c) in live]
            crossings = sum(1 for (j, c) in live
                            if layout.owner(j + 1, c) != rank)
            shift_words += crossings * m * mc
            shift_messages += crossings
            phases.stop("shift")
            wait()
            phases.start()
            for (tj, tc), blk in moved:
                upper(tj, tc)[:] = blk
            phases.stop("shift")
            wait()

            # ---- s sequential partial builds + panel broadcasts ------
            for c in range(s):
                phases.start()
                up_c = upper(i, c).copy()
                low_c = lower(i, c).copy()
                bcast_words += costs.transform_words(
                    representation, m, k=mc) + mc
                phases.stop("broadcast")
                wait()

                phases.start()
                u_block, negrows = build_partial_transform(
                    up_c, low_c, w, row_offset=c * mc,
                    representation=representation)
                if layout.owner(i, c) == rank:
                    upper(i, c)[:] = up_c
                    lower(i, c)[:] = low_c
                phases.stop("blocking")

                phases.start()
                for (j, cc) in my_chunks:
                    if j > i or (j == i and cc > c):
                        u_block.apply_pair(upper(j, cc), lower(j, cc))
                        if negrows.size:
                            upper(j, cc)[negrows] *= -1.0
                phases.stop("application")
                wait()

            if collect:
                phases.start()
                for (j, c) in my_chunks:
                    if j >= i:
                        r[i * m:(i + 1) * m,
                          col0(j, c):col0(j, c) + mc] = upper(j, c)
                phases.stop("gather")
            wait()

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_chunks), "steps": p - 1,
            "shift_words": shift_words,
            "shift_messages": shift_messages,
            "broadcast_words": bcast_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, barrier, exc)
    finally:
        _close_all(atts)


def _spin_wait(flags, idx, poison, phases, what):
    """Wait for a write-once flag without a global barrier.

    A handful of ``time.sleep(0)`` yields catches flags that are about
    to land, then the wait escalates to short real sleeps: the waiter
    is blocked on a *peer's* compute, so burning its timeslice on
    sched_yield churn (hundreds of µs per wait on an oversubscribed
    host) only slows the rank it is waiting for.  ``poison`` releases
    every waiter when a peer fails.  Payload visibility relies on the
    x86-TSO store order of the flag-after-data writes; the parity tests
    would catch a platform where that assumption breaks.
    """
    if flags[idx]:
        return
    phases.start()
    deadline = time.monotonic() + _BARRIER_TIMEOUT
    spins = 0
    while not flags[idx]:
        if poison[0]:
            phases.stop("wait")
            raise DistributionError("lookahead peer aborted")
        spins += 1
        time.sleep(0 if spins < 16 else 0.0001)
        if time.monotonic() > deadline:
            phases.stop("wait")
            raise DistributionError(
                f"lookahead timed out waiting for {what}")
    phases.stop("wait")


def _lookahead_worker(rank, nproc, tname, gen_h, r_h, ups_h, upflag_h,
                      piv_h, pivflag_h, uslot_h, ulen_h, poison_h,
                      m, p, w, layout, representation, collect, queue):
    """One PE of the Section-7 lookahead schedule (Version 1, NP ≥ 2).

    A barrier-free port of
    :func:`repro.parallel.lookahead.block_cyclic_lookahead_program`:
    the simulated program's ``Put``/``Recv`` pairs become write-once
    slots + flags, its per-step ``Broadcast`` of the built ``U_i``
    becomes one pickled slot written by the pivot owner — so the serial
    build happens once per step instead of ``NP`` times — and all
    synchronization is dataflow (each PE blocks only on the specific
    slot it needs next).  Comm counters mirror the simulated program's
    operations one for one.
    """
    atts = []
    poison = None
    try:
        _maybe_crash(rank, "spawn")
        tr = get_transport(tname)

        def att(handle):
            a = tr.attach(handle)
            atts.append(a)
            return a.array

        gen = att(gen_h)
        poison = att(poison_h)
        _maybe_crash(rank, "attach")
        ups, upflag = att(ups_h), att(upflag_h)
        piv, pivflag = att(piv_h), att(pivflag_h)
        uslot, ulen = att(uslot_h), att(ulen_h)
        r = att(r_h) if collect else None

        my_blocks = layout.blocks_of(rank, p)
        # Private working copy of this PE's block columns (the shared
        # generator segment is read-only input under this schedule).
        if my_blocks:
            data = np.concatenate(
                [gen[:, j * m:(j + 1) * m] for j in my_blocks], axis=1)
        else:
            data = np.zeros((2 * m, 0))
        pos = {j: idx for idx, j in enumerate(my_blocks)}
        state = {j: 0 for j in my_blocks}
        u_cache: dict[int, tuple] = {}
        phases = _Phases()
        shift_words = shift_messages = 0
        bcast_words = 0
        tw = costs.transform_words(representation, m) + m
        t_start = time.perf_counter()

        def upper(j):
            return data[:m, pos[j] * m:(pos[j] + 1) * m]

        def lower(j):
            return data[m:, pos[j] * m:(pos[j] + 1) * m]

        def put_up(s, tgt, blk):
            nonlocal shift_words, shift_messages
            phases.start()
            ups[s, tgt] = blk
            upflag[s, tgt] = 1
            shift_words += m * m
            shift_messages += 1
            phases.stop("shift")

        def put_pivot(i, blk):
            nonlocal shift_words, shift_messages
            phases.start()
            piv[i] = blk
            pivflag[i] = 1
            shift_words += m * m
            shift_messages += 1
            phases.stop("shift")

        def advance(j, to_step):
            """Bring block ``j`` up to ``to_step`` (stops before its
            own pivot turn)."""
            while state[j] < min(to_step, j - 1):
                s = state[j] + 1
                _spin_wait(upflag[s], j, poison, phases, f"up({s},{j})")
                upper(j)[:] = ups[s, j]
                u_blk, neg = u_cache[s]
                phases.start()
                u_blk.apply_pair(upper(j), lower(j))
                if neg.size:
                    upper(j)[neg] *= -1.0
                phases.stop("application")
                if j <= p - 2:
                    put_up(s + 1, j + 1, upper(j))
                state[j] = s
                if collect:
                    phases.start()
                    r[s * m:(s + 1) * m, j * m:(j + 1) * m] = upper(j)
                    phases.stop("gather")

        if collect:
            phases.start()
            for j in my_blocks:
                r[0:m, j * m:(j + 1) * m] = upper(j)
            phases.stop("gather")

        # Initial shift round: block j's upper at step 1 is the initial
        # upper of block j−1; block 0's heads the pivot chain.
        for j in my_blocks:
            if j == 0 and p >= 2:
                put_pivot(1, upper(0))
            elif 1 <= j <= p - 2:
                put_up(1, j + 1, upper(j))

        slot = uslot.shape[1]
        for i in range(1, p):
            pivot_owner = layout.owner(i)
            if rank == pivot_owner:
                advance(i, i - 1)
                _spin_wait(pivflag, i, poison, phases, f"pivot({i})")
                up = piv[i].copy()
                low = lower(i)
                phases.start()
                collected: list = []
                eliminate_block(up, low, w,
                                representation=representation,
                                panel=None, pivot_sign_fixup=False,
                                collect=collected)
                u_block = collected[0]
                negrows = np.nonzero(np.diag(up) < 0)[0]
                if negrows.size:
                    up[negrows] *= -1.0
                upper(i)[:] = up
                phases.stop("blocking")
                if collect:
                    phases.start()
                    r[i * m:(i + 1) * m, i * m:(i + 1) * m] = up
                    phases.stop("gather")
                if i + 1 < p:
                    put_pivot(i + 1, up)
                # "Broadcast": build once, ship the pickled transform.
                phases.start()
                buf = pickle.dumps((u_block, negrows), protocol=5)
                if len(buf) > slot:
                    raise DistributionError(
                        f"U payload ({len(buf)} B) exceeds the "
                        f"{slot} B transport slot")
                uslot[i, :len(buf)] = np.frombuffer(buf, dtype=np.uint8)
                ulen[i] = len(buf)
                u_cache[i] = (u_block, negrows)
                bcast_words += tw
                phases.stop("broadcast")
            else:
                _spin_wait(ulen, i, poison, phases, f"U({i})")
                phases.start()
                u_cache[i] = pickle.loads(
                    uslot[i, :int(ulen[i])].tobytes())
                bcast_words += tw
                phases.stop("broadcast")

            # Depth-1 lookahead: the next pivot owner advances only its
            # pivot block before rushing to the next build; everyone
            # else brings all live blocks current.
            am_next_owner = (i + 1 < p and rank == layout.owner(i + 1))
            if am_next_owner:
                advance(i + 1, i)
            else:
                for j in my_blocks:
                    if j > i:
                        advance(j, i)

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_blocks), "steps": p - 1,
            "shift_words": shift_words,
            "shift_messages": shift_messages,
            "broadcast_words": bcast_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, None, exc, poison=poison)
    finally:
        _close_all(atts)


def _solve_worker(rank, nproc, tname, r_h, b_h, y_h, x_h, red_h,
                  m, p, k, layout, barrier, queue):
    """One PE of the distributed triangular-solve program.

    The real-process counterpart of
    :func:`repro.parallel.spmd_solve.triangular_solve_program`,
    generalized to ``n × k`` panels: the forward sweep folds each
    broadcast ``y_i`` into the pending sums of this PE's later columns
    with one level-3 GEMM per block row; the backward sweep reduces the
    per-PE row sums through a shared reduction scratch.  Comm counters
    (``m·k`` words per collective) mirror the simulated program.
    """
    atts = []
    try:
        _maybe_crash(rank, "spawn")
        tr = get_transport(tname)

        def att(handle):
            a = tr.attach(handle)
            atts.append(a)
            return a.array

        rmat, bmat = att(r_h), att(b_h)
        ymat, xmat = att(y_h), att(x_h)
        red = att(red_h)
        _maybe_crash(rank, "attach")
        my_cols = layout.blocks_of(rank, p)
        phases = _Phases()
        bcast_words = reduce_words = 0
        t_start = time.perf_counter()

        def wait():
            phases.start()
            barrier.wait(timeout=_BARRIER_TIMEOUT)
            phases.stop("barrier")

        def rows(i):
            return slice(i * m, (i + 1) * m)

        def diag(i):
            return rmat[rows(i), rows(i)]

        # ---------------- forward sweep: Rᵀ y = b ---------------------
        acc = np.zeros((p, m, k))
        for i in range(p):
            if layout.owner(i) == rank:
                phases.start()
                ymat[rows(i)] = solve_upper_triangular(
                    diag(i), bmat[rows(i)] - acc[i], trans=True)
                phases.stop("solve")
            wait()
            phases.start()
            yi = ymat[rows(i)].copy()
            bcast_words += m * k
            after = [j for j in my_cols if j > i]
            if after:
                cols = np.concatenate(
                    [np.arange(j * m, (j + 1) * m) for j in after])
                upd = rmat[rows(i), :][:, cols].T @ yi
                acc[after] += upd.reshape(len(after), m, k)
            phases.stop("application")

        # ---------------- backward sweep: R x = y ---------------------
        pending = np.zeros((p, m, k))
        for i in range(p - 1, -1, -1):
            phases.start()
            red[rank] = pending[i]
            reduce_words += m * k
            phases.stop("reduce")
            wait()
            if layout.owner(i) == rank:
                phases.start()
                total = red.sum(axis=0)
                xmat[rows(i)] = solve_upper_triangular(
                    diag(i), ymat[rows(i)] - total)
                phases.stop("solve")
            wait()
            phases.start()
            bcast_words += m * k
            if i in my_cols and i > 0:
                xi = xmat[rows(i)].copy()
                upd = rmat[:i * m, rows(i)] @ xi
                pending[:i] += upd.reshape(i, m, k)
            phases.stop("application")

        _finish(rank, queue, t_start, phases, {
            "blocks": len(my_cols), "nrhs": k,
            "broadcast_words": bcast_words,
            "reduce_words": reduce_words,
        })
    except Exception as exc:                  # noqa: BLE001 — shipped back
        _fail(rank, queue, barrier, exc)
    finally:
        _close_all(atts)


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------
@dataclass
class MPRun:
    """Result of one real multiprocess distributed factorization."""

    r: np.ndarray | None
    nproc: int
    layout: object
    block_size: int
    num_blocks: int
    representation: str
    wall_seconds: float
    start_method: str
    #: Per-rank worker payloads (phase times, comm counters), rank order.
    workers: list[dict]
    #: Which per-step schedule ran (``"bulk"`` or ``"lookahead"``).
    schedule: str = "bulk"
    #: Transport the segments ran over.
    transport: str = "shared_memory"

    @property
    def time(self) -> float:
        """Wall-clock seconds to factor (the real-machine makespan)."""
        return self.wall_seconds

    def words_by_rank(self) -> dict[int, int]:
        """Shift (put) words per rank — comparable with
        :meth:`repro.machine.simulator.MachineReport.words_by_rank`."""
        return {w["rank"]: int(w["attrs"]["shift_words"])
                for w in self.workers}

    def broadcast_words_by_rank(self) -> dict[int, int]:
        """§6.3 transform words received per rank over all steps."""
        return {w["rank"]: int(w["attrs"]["broadcast_words"])
                for w in self.workers}

    def breakdown(self) -> dict[str, float]:
        """Phase breakdown of the slowest PE (mirrors
        :meth:`~repro.parallel.driver.SimulatedRun.breakdown`)."""
        worst = max(self.workers, key=lambda w: w["end"] - w["start"])
        return dict(worst["phases"])

    def worker_spans(self) -> list[Span]:
        """Per-PE spans (fresh objects) carrying phases + counters."""
        spans = []
        for w in self.workers:
            spans.append(Span(
                name="mp.pe", start=w["start"], end=w["end"],
                attributes=dict(w["attrs"]), phases=dict(w["phases"])))
        return spans

    def to_records(self) -> list[dict]:
        """Flatten per-PE spans into the unified trace schema.

        Same record shape as the engine span exporter and the simulated
        machine's trace — ``source`` is ``"multiprocess"`` and ``rank``
        is set on every record.  The per-rank streams are interleaved
        by start time (:func:`repro.obs.export.merge_rank_traces`), so
        the output reads as one global timeline rather than rank 0's
        whole history followed by rank 1's.
        """
        return merge_rank_traces(
            span_records(sp, source=SOURCE_MULTIPROCESS)
            for sp in self.worker_spans())


@dataclass
class MPSolveRun:
    """Result of one real multiprocess distributed triangular solve."""

    x: np.ndarray
    nproc: int
    layout: object
    block_size: int
    num_blocks: int
    nrhs: int
    wall_seconds: float
    start_method: str
    #: Per-rank worker payloads (phase times, comm counters), rank order.
    workers: list[dict]
    transport: str = "shared_memory"

    @property
    def time(self) -> float:
        return self.wall_seconds

    def broadcast_words_by_rank(self) -> dict[int, int]:
        """Words received per rank from the ``y_i``/``x_i`` broadcasts —
        comparable with
        :meth:`~repro.machine.simulator.MachineReport.broadcast_words_by_rank`
        of the simulated solve."""
        return {w["rank"]: int(w["attrs"]["broadcast_words"])
                for w in self.workers}

    def reduce_words_by_rank(self) -> dict[int, int]:
        """Words contributed per rank to the backward-sweep reductions."""
        return {w["rank"]: int(w["attrs"]["reduce_words"])
                for w in self.workers}

    def breakdown(self) -> dict[str, float]:
        """Phase breakdown of the slowest PE."""
        worst = max(self.workers, key=lambda w: w["end"] - w["start"])
        return dict(worst["phases"])

    def worker_spans(self) -> list[Span]:
        spans = []
        for w in self.workers:
            spans.append(Span(
                name="mp.solve.pe", start=w["start"], end=w["end"],
                attributes=dict(w["attrs"]), phases=dict(w["phases"])))
        return spans

    def to_records(self) -> list[dict]:
        """Per-PE solve spans in the unified trace schema."""
        return merge_rank_traces(
            span_records(sp, source=SOURCE_MULTIPROCESS)
            for sp in self.worker_spans())


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def _drain(queue, procs, nproc, barrier):
    """Collect one payload per rank, watching for dead workers."""
    from queue import Empty
    results: dict[int, dict] = {}
    deadline = time.monotonic() + _BARRIER_TIMEOUT
    while len(results) < nproc:
        try:
            rank, payload = queue.get(timeout=0.25)
            results[rank] = payload
            continue
        except Empty:
            pass
        dead = [pr for pr in procs if pr.exitcode not in (None, 0)]
        if dead:
            if barrier is not None:
                try:
                    barrier.abort()
                except Exception:
                    pass
            raise DistributionError(
                f"worker process(es) died with exit codes "
                f"{[pr.exitcode for pr in dead]}")
        if time.monotonic() > deadline:
            if barrier is not None:
                try:
                    barrier.abort()
                except Exception:
                    pass
            raise DistributionError(
                "multiprocess run timed out waiting for workers")
    return [results[r] for r in range(nproc)]


def _run_workers(ctx, worker, nproc, args, queue, barrier):
    """Start one worker per rank, drain payloads, join, check failures.

    Returns ``(payloads, wall_seconds)``; raises
    :class:`NotPositiveDefiniteError` on a worker-side Schur breakdown
    and :class:`DistributionError` on any other worker failure.  The
    caller's ``finally`` owns segment cleanup (via the transport
    session) — this helper only guarantees no worker outlives it.
    """
    procs = [ctx.Process(target=worker, args=(rank, nproc) + args,
                         daemon=True)
             for rank in range(nproc)]
    try:
        t0 = time.perf_counter()
        try:
            for pr in procs:
                pr.start()
        except (OSError, PermissionError) as exc:
            raise MultiprocessUnavailableError(
                f"could not start worker processes: {exc}") from exc
        payloads = _drain(queue, procs, nproc, barrier)
        wall = time.perf_counter() - t0
        for pr in procs:
            pr.join(timeout=10.0)
    finally:
        for pr in procs:
            if pr.is_alive():
                pr.terminate()
    failures = [w for w in payloads if not w.get("ok")]
    if failures:
        if any(w.get("kind") == "breakdown" for w in failures):
            raise NotPositiveDefiniteError(
                "distributed Schur breakdown: "
                + failures[0]["error"].splitlines()[0])
        raise DistributionError(
            "multiprocess worker failed:\n" + failures[0]["error"])
    return payloads, wall


def mp_factorization(t: SymmetricBlockToeplitz,
                     nproc: int | None = None, *,
                     b: float = 1,
                     plan=None,
                     layout=None,
                     representation: str | None = None,
                     collect: bool = True,
                     schedule: str | None = None,
                     transport: str | None = None) -> MPRun:
    """Factor ``t`` with real OS processes, one per PE.

    Parameters mirror
    :func:`~repro.parallel.driver.simulate_factorization`: ``b`` (or an
    explicit ``layout``) selects the paper's Version 1/2/3 distribution,
    a machine-tuned :class:`~repro.engine.SolverPlan` may supply
    ``nproc`` / ``b`` / ``representation`` / ``schedule`` /
    ``transport``, and ``collect=False`` skips gathering ``R`` (for
    timing sweeps).  ``schedule="lookahead"`` runs the Section-7
    pipelined schedule (Version 1 layout, NP ≥ 2) instead of the
    barrier-per-step bulk loop.

    Raises
    ------
    MultiprocessUnavailableError
        When the platform cannot run the backend (no shared memory, no
        semaphores, worker processes cannot start, or
        ``REPRO_MP_DISABLE`` is set).  The engine catches this and falls
        back to the simulated backend, recording the reason.
    NotPositiveDefiniteError
        When a worker hits a Schur breakdown (the matrix is not SPD) —
        so the engine's armed indefinite fallback takes over exactly as
        in the serial path.
    """
    if plan is not None:
        if nproc is None:
            nproc = plan.nproc
        if layout is None and plan.distribution_b is not None:
            b = plan.distribution_b
        if representation is None:
            representation = plan.representation
        if schedule is None:
            schedule = getattr(plan, "schedule", "bulk")
        if transport is None:
            transport = getattr(plan, "transport", "shared_memory")
    representation = representation or "vy2"
    schedule = schedule or "bulk"
    transport = transport or "shared_memory"
    if nproc is None:
        raise DistributionError(
            "nproc is required (directly or through a SolverPlan)")
    if schedule not in SCHEDULES:
        raise DistributionError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}")
    ok, reason = multiprocess_available(transport=transport)
    if not ok:
        raise MultiprocessUnavailableError(reason)
    if layout is None:
        layout = make_layout(nproc, b=b)
    lookahead = schedule == "lookahead"
    if lookahead:
        if not (isinstance(layout, BlockCyclicLayout)
                and layout.group_size == 1):
            raise DistributionError(
                "lookahead is implemented for the Version 1 layout")
        if nproc < 2:
            raise DistributionError("lookahead needs at least 2 PEs")
    elif isinstance(layout, BlockCyclicLayout):
        pass
    elif not isinstance(layout, SpreadLayout):
        raise DistributionError(f"unknown layout {layout!r}")

    g = spd_generator(t)              # NotPositiveDefiniteError up front
    m, p = g.block_size, g.num_blocks
    n = m * p
    if p < 2:
        raise ShapeError("need at least 2 block columns to factor")
    if isinstance(layout, SpreadLayout):
        layout.chunk_width(m)         # validates m % spread == 0
        if not np.all(g.w[:m] == 1):
            raise DistributionError(
                "the spread (Version 3) program supports the SPD "
                "signature only")

    tr = get_transport(transport)
    ctx = tr.context()
    barrier = None
    with tr.session() as sess:
        try:
            gen_arr, gen_h = sess.ndarray(g.gen.shape)
            r_h = None
            if collect:
                _r_arr, r_h = sess.ndarray((n, n))
            if not lookahead:
                barrier = sess.barrier(nproc)
            queue = sess.queue()
        except (OSError, PermissionError, ValueError) as exc:
            raise MultiprocessUnavailableError(
                f"could not allocate shared resources: {exc}") from exc
        gen_arr[:] = g.gen

        if lookahead:
            ups, ups_h = sess.ndarray((p, p, m, m))
            upflag, upflag_h = sess.ndarray((p, p), dtype=np.int64)
            piv, piv_h = sess.ndarray((p, m, m))
            pivflag, pivflag_h = sess.ndarray((p,), dtype=np.int64)
            uslot, uslot_h = sess.ndarray((p, _u_slot_bytes(m)),
                                          dtype=np.uint8)
            ulen, ulen_h = sess.ndarray((p,), dtype=np.int64)
            poison, poison_h = sess.ndarray((1,), dtype=np.int64)
            args = (transport, gen_h, r_h, ups_h, upflag_h, piv_h,
                    pivflag_h, uslot_h, ulen_h, poison_h, m, p, g.w,
                    layout, representation, collect, queue)
            worker = _lookahead_worker
        else:
            args = (transport, gen_h, r_h, m, p, g.w, layout,
                    representation, collect, barrier, queue)
            worker = (_block_cyclic_worker
                      if isinstance(layout, BlockCyclicLayout)
                      else _spread_worker)

        payloads, wall = _run_workers(ctx, worker, nproc, args, queue,
                                      barrier)

        r = None
        if collect:
            r = np.array(_r_arr)
        run = MPRun(r=r, nproc=nproc, layout=layout, block_size=m,
                    num_blocks=p, representation=representation,
                    wall_seconds=wall,
                    start_method=ctx.get_start_method(),
                    workers=sorted(payloads, key=lambda w: w["rank"]),
                    schedule=schedule, transport=transport)
    _publish_factor_obs(run)
    return run


def _publish_factor_obs(run: MPRun) -> None:
    if not obs.enabled():
        return
    for sp in run.worker_spans():
        obs.adopt_span(sp)
    reg = obs.default_registry()
    reg.counter(
        "repro_mp_runs_total",
        "Real multiprocess distributed factorizations completed"
    ).inc(1, version=str(run.layout.version), nproc=str(run.nproc),
          schedule=run.schedule)
    reg.counter(
        "repro_mp_comm_words_total",
        "Words moved by the multiprocess backend, by kind"
    ).inc(sum(run.words_by_rank().values()), kind="shift")
    reg.counter(
        "repro_mp_comm_words_total",
        "Words moved by the multiprocess backend, by kind"
    ).inc(sum(run.broadcast_words_by_rank().values()),
          kind="broadcast")


def mp_triangular_solve(r: np.ndarray, layout, b: np.ndarray, *,
                        block_size: int,
                        transport: str = "shared_memory"
                        ) -> MPSolveRun:
    """Solve ``RᵀR x = b`` with the factor column-distributed over
    real worker processes.

    ``r`` is the gathered upper-triangular factor (each PE works only
    on the columns the Versions-1/2 ``layout`` assigns it); ``b`` may be
    a vector or an ``n × k`` panel — the per-PE sweeps are level-3
    either way.  Returns the solution plus per-PE spans and comm
    counters in exact parity with the simulated
    :func:`~repro.parallel.spmd_solve.triangular_solve_program`.
    """
    if not isinstance(layout, BlockCyclicLayout):
        raise DistributionError(
            "the distributed solve supports Versions 1/2 "
            "(whole block columns)")
    ok, reason = multiprocess_available(transport=transport)
    if not ok:
        raise MultiprocessUnavailableError(reason)
    n = r.shape[0]
    m = int(block_size)
    if n % m != 0:
        raise ShapeError(f"factor order {n} not a multiple of m={m}")
    p = n // m
    b = np.asarray(b, dtype=np.float64)
    single = b.ndim == 1
    panel = b[:, None] if single else b
    if panel.shape[0] != n:
        raise ShapeError(
            f"b has {panel.shape[0]} rows, expected {n}")
    k = panel.shape[1]
    nproc = layout.nproc

    tr = get_transport(transport)
    ctx = tr.context()
    with tr.session() as sess:
        try:
            r_arr, r_h = sess.ndarray((n, n))
            b_arr, b_h = sess.ndarray((n, k))
            _y_arr, y_h = sess.ndarray((n, k))
            x_arr, x_h = sess.ndarray((n, k))
            _red, red_h = sess.ndarray((nproc, m, k))
            barrier = sess.barrier(nproc)
            queue = sess.queue()
        except (OSError, PermissionError, ValueError) as exc:
            raise MultiprocessUnavailableError(
                f"could not allocate shared resources: {exc}") from exc
        r_arr[:] = r
        b_arr[:] = panel

        args = (transport, r_h, b_h, y_h, x_h, red_h, m, p, k, layout,
                barrier, queue)
        payloads, wall = _run_workers(ctx, _solve_worker, nproc, args,
                                      queue, barrier)
        x = np.array(x_arr)

    run = MPSolveRun(x=x[:, 0] if single else x, nproc=nproc,
                     layout=layout, block_size=m, num_blocks=p, nrhs=k,
                     wall_seconds=wall,
                     start_method=ctx.get_start_method(),
                     workers=sorted(payloads, key=lambda w: w["rank"]),
                     transport=transport)
    if obs.enabled():
        for sp in run.worker_spans():
            obs.adopt_span(sp)
        reg = obs.default_registry()
        reg.counter(
            "repro_mp_solves_total",
            "Real multiprocess distributed triangular solves completed"
        ).inc(1, nproc=str(nproc))
        reg.counter(
            "repro_mp_comm_words_total",
            "Words moved by the multiprocess backend, by kind"
        ).inc(sum(run.broadcast_words_by_rank().values()),
              kind="solve_broadcast")
        reg.counter(
            "repro_mp_comm_words_total",
            "Words moved by the multiprocess backend, by kind"
        ).inc(sum(run.reduce_words_by_rank().values()),
              kind="solve_reduce")
    return run
