"""Distributed triangular solves with the column-distributed factor.

After the distributed factorization, PE ``r`` holds the column blocks
``R[i, j]`` for its local columns ``j`` (Versions 1/2 layout).  Solving
``T x = RᵀR x = b`` proceeds in two block-substitution sweeps:

* **forward** (``Rᵀ y = b``): block column ``I`` is wholly owned, so its
  owner applies the accumulated couplings, solves the ``m × m``
  triangular system, and broadcasts ``y_I``; every PE folds the new
  ``y_I`` into the pending sums of its local later columns.
* **backward** (``R x = y``): the coupling ``R[i, j] x_j`` lives with the
  owner of column ``j``, so the row sums are *reduced* to the diagonal
  owner (one sum-reduction + one broadcast per block row).

One small collective pair per block row — the classic limited-
parallelism distributed triangular solve; its simulated cost is exactly
why the paper (and practice) amortize one factorization over many
right-hand sides.  ``b`` may be a vector or an ``n × k`` panel: the
panel case moves ``m·k`` words per collective and turns every per-PE
update into a level-3 product, which is the distributed face of the
batched-RHS story.  The numerics are real and checked against the
serial solution.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.machine.ops import Barrier, Broadcast, Compute, Reduce
from repro.parallel.distributions import BlockCyclicLayout
from repro.utils.lintools import solve_upper_triangular

__all__ = ["triangular_solve_program"]


def _charge_flops(node_model, flops: int, length: int):
    if node_model is None or flops <= 0:
        return Compute(0.0, category="solve")
    return Compute(node_model.level2.time(flops, max(length, 1)),
                   category="solve")


def triangular_solve_program(ctx, *, layout: BlockCyclicLayout, m: int,
                             p: int, r_blocks: dict, b: np.ndarray,
                             node_model=None):
    """SPMD program solving ``RᵀR x = b`` from distributed ``R`` columns.

    ``r_blocks`` maps each rank to its ``{(i, j): m×m}`` dict from the
    factorization run; ``b`` — a vector or an ``n × k`` panel — is
    replicated (it is only ``O(n·k)``).  Returns each rank's
    ``{j: x_j}`` solution pieces, shaped like the input (``(m,)`` per
    block for a vector, ``(m, k)`` for a panel).
    """
    rank, _nproc = ctx.rank, ctx.nproc
    mine = r_blocks[rank]
    my_cols = layout.blocks_of(rank, p)
    n = m * p
    b = np.asarray(b, dtype=np.float64)
    single = b.ndim == 1
    bp = b[:, None] if single else b
    if bp.shape[0] != n:
        raise ShapeError(f"b has {bp.shape[0]} rows, expected {n}")
    k = bp.shape[1]
    words = m * k

    # ---------------- forward sweep: Rᵀ y = b ----------------------------
    acc = {j: np.zeros((m, k)) for j in my_cols}
    y = np.zeros((n, k))
    for i in range(p):
        owner = layout.owner(i)
        payload = None
        if rank == owner:
            rii = mine[(i, i)]
            payload = solve_upper_triangular(
                rii, bp[i * m:(i + 1) * m] - acc[i], trans=True)
            yield _charge_flops(node_model, m * m * k, m)
        yi = yield Broadcast(root=owner, payload=payload, words=words,
                             category="broadcast")
        y[i * m:(i + 1) * m] = yi
        flops = 0
        for j in my_cols:
            if j > i:
                acc[j] += mine[(i, j)].T @ yi
                flops += 2 * m * m * k
        if flops:
            yield _charge_flops(node_model, flops, m)
    yield Barrier()

    # ---------------- backward sweep: R x = y ----------------------------
    # pending[i] (local) accumulates Σ_{j>i, j local} R[i, j] x_j; the
    # full row sum is reduced to owner(i) just before x_i is solved.
    pending = {i: np.zeros((m, k)) for i in range(p)}
    x = np.zeros((n, k))
    for i in range(p - 1, -1, -1):
        total = yield Reduce(root=layout.owner(i), payload=pending[i],
                             words=words)
        payload = None
        if rank == layout.owner(i):
            rii = mine[(i, i)]
            payload = solve_upper_triangular(
                rii, y[i * m:(i + 1) * m] - total)
            yield _charge_flops(node_model, m * m * k, m)
        xi = yield Broadcast(root=layout.owner(i), payload=payload,
                             words=words, category="broadcast")
        x[i * m:(i + 1) * m] = xi
        if i in my_cols:
            flops = 0
            for big_i in range(i):
                pending[big_i] += mine[(big_i, i)] @ xi
                flops += 2 * m * m * k
            if flops:
                yield _charge_flops(node_model, flops, m)
    yield Barrier()
    out = {}
    for j in my_cols:
        piece = x[j * m:(j + 1) * m].copy()
        out[j] = piece[:, 0] if single else piece
    return out
