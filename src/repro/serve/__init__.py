"""Solver-as-a-service: cross-request panel coalescing.

The engine already amortizes factorizations (``FactorizationCache``)
and solves panels at level-3 BLAS speed; this package carries both
levers across the request boundary.  A :class:`BatchDispatcher` groups
concurrent single-RHS requests that share a factorization
(``plan.cache_key()``) and executes them as one ``n × k`` panel under a
configurable latency budget; :class:`SolverService` fronts it with
named operators and sync/async/TCP request surfaces; the clients in
:mod:`repro.serve.client` consume either transport behind one API.

Quick start::

    from repro.serve import SolverService

    with SolverService(max_wait_ms=2.0, max_batch_k=32) as svc:
        svc.register("toeplitz", op, warm=True)
        resp = svc.solve("toeplitz", b)      # resp.x, resp.record

See ``docs/serving.md`` for the serving guide (latency budget tuning,
admission control, deployment over TCP, metrics).
"""

from repro.serve.dispatcher import (
    BatchDispatcher,
    ServeRecord,
    ServeResponse,
    ServeStats,
)
from repro.serve.server import SolverService, TCPServerHandle, start_tcp_server
from repro.serve.client import InProcessClient, RemoteServeError, TCPClient

__all__ = [
    "BatchDispatcher",
    "ServeRecord",
    "ServeResponse",
    "ServeStats",
    "SolverService",
    "TCPServerHandle",
    "start_tcp_server",
    "InProcessClient",
    "RemoteServeError",
    "TCPClient",
]
