"""Clients for the solver service: in-process and TCP.

Both speak the same surface — ``solve(op, b)`` returning a
:class:`~repro.serve.ServeResponse` — so callers can develop against
:class:`InProcessClient` and switch to :class:`TCPClient` without
touching solve sites.  The TCP client maps wire-level error names back
onto the package's exception types, so ``except ServiceOverloadError``
works identically on either side of the socket.
"""

from __future__ import annotations

import json
import socket
import threading

import numpy as np

from repro.errors import (
    DeadlineExceededError,
    InvalidOptionError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadError,
    ShapeError,
)
from repro.serve.dispatcher import ServeRecord, ServeResponse, ServeStats

__all__ = ["InProcessClient", "RemoteServeError", "TCPClient"]


class RemoteServeError(ReproError, RuntimeError):
    """A server-side failure with no local exception type to map to."""


#: Wire error names the TCP client translates back to local exceptions.
_ERROR_TYPES = {
    cls.__name__: cls
    for cls in (ServiceOverloadError, DeadlineExceededError,
                ServiceClosedError, InvalidOptionError, ShapeError)
}


class InProcessClient:
    """Call a :class:`~repro.serve.SolverService` in the same process.

    A thin veneer — it exists so code written against the client
    surface runs unchanged whether the service is local or remote.
    """

    def __init__(self, service):
        self._service = service

    def ops(self) -> list[str]:
        return list(self._service.operators())

    def solve(self, op: str, b, *,
              timeout_s: float | None = None) -> ServeResponse:
        return self._service.solve(op, b, timeout_s=timeout_s)

    def submit(self, op: str, b, *, timeout_s: float | None = None):
        """Future-returning variant (in-process only)."""
        return self._service.submit(op, b, timeout_s=timeout_s)

    def stats(self) -> ServeStats:
        return self._service.stats()


class TCPClient:
    """Blocking newline-JSON client for :func:`start_tcp_server`.

    One socket per client; calls are serialized with a lock (open
    several clients for concurrent traffic — the *server* coalesces
    across connections, so clients stay simple).
    """

    def __init__(self, host: str, port: int, *,
                 connect_timeout: float = 5.0):
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        self._sock.settimeout(None)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _roundtrip(self, msg: dict) -> dict:
        with self._lock:
            self._file.write(json.dumps(msg).encode() + b"\n")
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = json.loads(line)
        if reply.get("ok"):
            return reply
        exc_type = _ERROR_TYPES.get(reply.get("error", ""),
                                    RemoteServeError)
        raise exc_type(reply.get("message", "remote solve failed"))

    # ------------------------------------------------------------------
    def solve(self, op: str, b, *,
              timeout_s: float | None = None) -> ServeResponse:
        """Solve against remote operator ``op``; raises the same
        exception types as the in-process path."""
        msg: dict = {"op": op, "b": np.asarray(b, dtype=np.float64).tolist()}
        if timeout_s is not None:
            msg["timeout_ms"] = float(timeout_s) * 1e3
        reply = self._roundtrip(msg)
        record = ServeRecord(**reply["record"])
        return ServeResponse(x=np.asarray(reply["x"], dtype=np.float64),
                             record=record,
                             execution=reply.get("execution"))

    def ops(self) -> list[str]:
        return list(self._roundtrip({"cmd": "ops"})["ops"])

    def stats(self) -> ServeStats:
        return ServeStats(**self._roundtrip({"cmd": "stats"})["stats"])

    def metrics(self) -> str:
        """Prometheus exposition text from the server's registry."""
        return self._roundtrip({"cmd": "metrics"})["metrics"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
