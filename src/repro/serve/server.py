"""The solver service: named operators in front of the dispatcher.

:class:`SolverService` is the deployable unit: it owns a
:class:`~repro.serve.BatchDispatcher`, maps operator *names* to planned
:class:`~repro.engine.SolverPlan`\\ s (planning happens once, at
registration), and exposes three request surfaces:

* **in-process, sync** — :meth:`SolverService.solve` (or
  :meth:`submit` for a future);
* **in-process, async** — :meth:`SolverService.asolve`, awaitable from
  any asyncio event loop;
* **TCP** — :func:`start_tcp_server` runs an asyncio
  newline-delimited-JSON server (its event loop on a daemon thread, the
  numeric work on the dispatcher's executor), so external clients get
  the same coalescing as in-process callers.

The wire protocol is one JSON object per line.  Requests::

    {"op": "<name>", "b": [...], "id": 7, "timeout_ms": 50}
    {"cmd": "ops" | "stats" | "metrics"}

Responses echo ``id`` when present and carry either
``{"ok": true, "x": [...], "record": {...}}`` or
``{"ok": false, "error": "<ExceptionName>", "message": "..."}``.
Requests on one connection are handled concurrently (a task per line),
so a pipelining client's traffic coalesces exactly like concurrent
connections do.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
from concurrent.futures import Future

import numpy as np

import repro.obs as obs
from repro.engine.plan import SolverPlan
from repro.engine.plan import plan as make_plan
from repro.errors import InvalidOptionError, ReproError
from repro.serve.dispatcher import BatchDispatcher, ServeResponse, ServeStats

__all__ = ["SolverService", "TCPServerHandle", "start_tcp_server"]


class SolverService:
    """Serve solve requests against a set of registered operators.

    Construction knobs are the dispatcher's (latency budget, panel cap,
    admission bound, worker threads); see
    :class:`~repro.serve.BatchDispatcher`.
    """

    def __init__(self, *, max_wait_ms: float = 2.0, max_batch_k: int = 32,
                 max_queue_depth: int = 256, workers: int = 2,
                 cache=None, adaptive_wait: bool = False,
                 store=None):
        self._dispatcher = BatchDispatcher(
            max_wait_ms=max_wait_ms, max_batch_k=max_batch_k,
            max_queue_depth=max_queue_depth, workers=workers, cache=cache,
            adaptive_wait=adaptive_wait, store=store)
        #: Explicit persistent store for warm-up at registration time
        #: (``None`` lets each plan's ``cache`` axis decide).
        self._store = store
        self._plans: dict[str, SolverPlan] = {}
        self._plans_lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, operator, *, warm: bool = False,
                 **plan_kwargs) -> SolverPlan:
        """Plan ``operator`` once and serve it under ``name``.

        ``plan_kwargs`` go to :func:`repro.engine.plan` (algorithm,
        precision, representation, …); ``warm=True`` additionally pays
        the factorization now, so the first request hits the cache.
        With ``cache="persistent"`` in the plan kwargs (or a ``store``
        handed to the service), warming first consults the on-disk
        store — a restarted service reloads yesterday's factorization
        instead of recomputing it — and publishes fresh computes back.
        """
        pl = make_plan(operator, **plan_kwargs)
        with self._plans_lock:
            self._plans[name] = pl
        if warm:
            from repro.engine.engine import factor
            factor(pl, store=self._store)
        return pl

    def operators(self) -> tuple[str, ...]:
        """Registered operator names, sorted."""
        with self._plans_lock:
            return tuple(sorted(self._plans))

    def plan_for(self, name: str) -> SolverPlan:
        """The plan serving ``name`` (raises on unknown names)."""
        with self._plans_lock:
            try:
                return self._plans[name]
            except KeyError:
                raise InvalidOptionError(
                    f"unknown operator {name!r}; registered: "
                    f"{sorted(self._plans)}") from None

    # ------------------------------------------------------------------
    def submit(self, name: str, b, *,
               timeout_s: float | None = None) -> Future:
        """Enqueue a solve against operator ``name``; returns a future
        of :class:`~repro.serve.ServeResponse`."""
        return self._dispatcher.submit(self.plan_for(name), b,
                                       timeout_s=timeout_s)

    def solve(self, name: str, b, *,
              timeout_s: float | None = None) -> ServeResponse:
        """Blocking convenience: ``submit(...).result()``."""
        return self.submit(name, b, timeout_s=timeout_s).result()

    async def asolve(self, name: str, b, *,
                     timeout_s: float | None = None) -> ServeResponse:
        """Awaitable solve for asyncio callers (the numeric work stays
        on the dispatcher's thread pool)."""
        return await asyncio.wrap_future(
            self.submit(name, b, timeout_s=timeout_s))

    # ------------------------------------------------------------------
    def stats(self) -> ServeStats:
        """Dispatcher counter snapshot."""
        return self._dispatcher.stats()

    def close(self, *, drain: bool = True,
              timeout: float | None = 30.0) -> None:
        """Shut the dispatcher down (see
        :meth:`~repro.serve.BatchDispatcher.close`)."""
        self._dispatcher.close(drain=drain, timeout=timeout)

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)


# ----------------------------------------------------------------------
# TCP front end
# ----------------------------------------------------------------------
def _error_reply(exc: Exception) -> dict:
    return {"ok": False, "error": type(exc).__name__,
            "message": str(exc)}


async def _solve_reply(service: SolverService, msg: dict) -> dict:
    try:
        b = np.asarray(msg["b"], dtype=np.float64)
        timeout_ms = msg.get("timeout_ms")
        timeout_s = None if timeout_ms is None else float(timeout_ms) / 1e3
        resp = await service.asolve(msg.get("op", "default"), b,
                                    timeout_s=timeout_s)
    except (ReproError, KeyError, TypeError, ValueError) as exc:
        return _error_reply(exc)
    return {"ok": True, "x": resp.x.tolist(),
            "record": dataclasses.asdict(resp.record),
            "execution": (None if resp.execution is None
                          else {"nrhs": resp.execution.nrhs,
                                "wall_seconds":
                                    resp.execution.wall_seconds,
                                "algorithm": resp.execution.algorithm,
                                "cache_hit": resp.execution.cache_hit})}


async def _command_reply(service: SolverService, msg: dict) -> dict:
    cmd = msg.get("cmd")
    if cmd == "ops":
        return {"ok": True, "ops": list(service.operators())}
    if cmd == "stats":
        return {"ok": True,
                "stats": dataclasses.asdict(service.stats())}
    if cmd == "metrics":
        return {"ok": True, "metrics": obs.render_prometheus()}
    return _error_reply(InvalidOptionError(
        f"unknown command {cmd!r}; expected ops/stats/metrics"))


async def _handle_connection(service: SolverService,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    write_lock = asyncio.Lock()
    tasks: set[asyncio.Task] = set()

    async def respond(msg_id, coro) -> None:
        reply = await coro
        if msg_id is not None:
            reply["id"] = msg_id
        async with write_lock:
            writer.write(json.dumps(reply).encode() + b"\n")
            await writer.drain()

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                msg = json.loads(line)
                if not isinstance(msg, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                await respond(None, _ready(_error_reply(exc)))
                continue
            coro = (_command_reply(service, msg) if "cmd" in msg
                    else _solve_reply(service, msg))
            task = asyncio.ensure_future(respond(msg.get("id"), coro))
            tasks.add(task)
            task.add_done_callback(tasks.discard)
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass


async def _ready(value: dict) -> dict:
    return value


class TCPServerHandle:
    """A running TCP front end (event loop on a daemon thread)."""

    def __init__(self, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread, server: asyncio.AbstractServer,
                 host: str, port: int):
        self._loop = loop
        self._thread = thread
        self._server = server
        self.host = host
        self.port = port
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting, close connections, stop the loop thread.

        The service itself is left running — callers own its
        lifecycle; close it separately (ideally after this, so
        connections drain first)."""
        if self._closed:
            return
        self._closed = True

        async def _shutdown():
            self._server.close()
            await self._server.wait_closed()

        asyncio.run_coroutine_threadsafe(
            _shutdown(), self._loop).result(timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout)
        if not self._loop.is_running():  # pragma: no branch
            self._loop.close()

    def __enter__(self) -> "TCPServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def start_tcp_server(service: SolverService, host: str = "127.0.0.1",
                     port: int = 0) -> TCPServerHandle:
    """Expose ``service`` over TCP; returns once the socket is bound.

    ``port=0`` picks a free port (read it back from ``handle.port``).
    The asyncio event loop runs on a daemon thread, so this works from
    synchronous code and tests alike; :meth:`TCPServerHandle.close`
    tears it down.
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot: dict = {}

    def runner() -> None:
        asyncio.set_event_loop(loop)

        async def _boot():
            try:
                server = await asyncio.start_server(
                    lambda r, w: _handle_connection(service, r, w),
                    host, port)
            except OSError as exc:
                boot["error"] = exc
                started.set()
                return
            boot["server"] = server
            boot["addr"] = server.sockets[0].getsockname()[:2]
            started.set()

        loop.run_until_complete(_boot())
        if "error" not in boot:
            loop.run_forever()

    thread = threading.Thread(target=runner, name="repro-serve-tcp",
                              daemon=True)
    thread.start()
    started.wait()
    if "error" in boot:
        thread.join()
        loop.close()
        raise boot["error"]
    bound_host, bound_port = boot["addr"]
    return TCPServerHandle(loop, thread, boot["server"],
                           bound_host, bound_port)
