"""Micro-batching dispatcher: turn concurrent traffic into panels.

The throughput levers this package already built — the
``FactorizationCache`` (factor once, solve many) and level-3 panel
solves (one ``dtrsm`` pair for ``k`` right-hand sides) — both want the
same thing from a serving layer: requests that share a factorization
should reach the engine *together*, as one ``n × k`` panel.  That is
O'Leary's block-method argument applied at the request boundary, and
the paper's Section 6.5 lesson (trade a little latency for level-3
shape) applied to traffic instead of flops.

:class:`BatchDispatcher` implements it:

* requests are grouped by ``plan.cache_key()`` — operator fingerprint
  plus every factorization-relevant plan knob — so only solves that can
  share a factorization and a panel ever coalesce;
* a group is dispatched when it reaches ``max_batch_k`` columns or its
  oldest request has waited ``max_wait_ms`` (the latency budget),
  whichever comes first; a batch of one takes the plain sequential
  :func:`repro.engine.execute` path bit for bit;
* admission control bounds the queue: past ``max_queue_depth`` pending
  requests, :meth:`submit` fast-fails with
  :class:`~repro.errors.ServiceOverloadError` instead of letting queue
  wait grow without bound;
* per-request deadlines (``timeout_s``) are enforced while queued —
  an expired request fails with
  :class:`~repro.errors.DeadlineExceededError` without touching the
  numeric layer;
* :meth:`close` stops admissions and (by default) *drains*: everything
  already queued is dispatched immediately and every in-flight batch
  completes before the call returns.

Every completed request carries a :class:`ServeRecord` (batch id, queue
wait, coalesced width, end-to-end latency) next to the batch's shared
:class:`~repro.engine.ExecutionRecord`; records export into the unified
trace schema (``kind="request"``, ``source="serve"``) and the
dispatcher publishes service-level counters/gauges — queue depth, batch
occupancy, p50/p99 latency — through the :mod:`repro.obs` metric
registry whenever observability is enabled.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.engine.plan import SolverPlan
from repro.errors import (
    DeadlineExceededError,
    ServiceClosedError,
    ServiceOverloadError,
    ShapeError,
)

__all__ = [
    "BatchDispatcher",
    "ServeRecord",
    "ServeResponse",
    "ServeStats",
]


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sorted sample list."""
    idx = min(len(samples) - 1, max(0, int(round(q * (len(samples) - 1)))))
    return samples[idx]


@dataclass(frozen=True)
class ServeRecord:
    """Per-request serving summary, always collected.

    The service-side counterpart of the engine's
    :class:`~repro.engine.ExecutionRecord`: where the execution record
    describes the (possibly shared) numeric work, this one describes
    what serving did to *this* request — how long it queued, which
    batch it rode in and how wide that panel was.
    """

    request_id: int
    batch_id: int
    #: How many requests the batch coalesced (1 = sequential path).
    batch_k: int
    #: Seconds spent queued before the batch was dispatched.
    queue_seconds: float
    #: End-to-end seconds from submit to response.
    wall_seconds: float
    algorithm: str
    cache_hit: bool
    order: int
    #: ``perf_counter`` timestamp of the submit (span clock).
    start: float = 0.0

    def to_record(self, *, rec_id: int = 0,
                  parent: int | None = None) -> dict:
        """Export as one unified trace-schema record
        (:func:`repro.obs.make_record`, kind ``"request"``)."""
        return obs.make_record(
            source=obs.SOURCE_SERVE, rec_id=rec_id, parent=parent,
            name="serve.request", kind=obs.KIND_REQUEST, rank=None,
            start=self.start, end=self.start + self.wall_seconds,
            attrs={
                "request_id": self.request_id,
                "batch_id": self.batch_id,
                "batch_k": self.batch_k,
                "queue_seconds": self.queue_seconds,
                "algorithm": self.algorithm,
                "cache_hit": self.cache_hit,
                "order": self.order,
            })


@dataclass(frozen=True)
class ServeResponse:
    """What a completed solve request resolves to."""

    x: np.ndarray
    #: Per-request serving summary (queue wait, batch id, coalesced k).
    record: ServeRecord
    #: The coalesced batch's shared engine record (``nrhs`` = panel
    #: width the execution actually ran; ``None`` only for responses
    #: rebuilt from a wire format that dropped it).
    execution: "object | None" = None


@dataclass(frozen=True)
class ServeStats:
    """Snapshot of the dispatcher counters."""

    submitted: int
    completed: int
    failed: int
    overloads: int
    deadline_expirations: int
    batches: int
    coalesced_requests: int
    queue_depth: int
    in_flight_batches: int
    latency_p50_seconds: float
    latency_p99_seconds: float
    #: The wait budget currently in force (equals the configured
    #: ``max_wait_ms`` unless ``adaptive_wait`` is on).  Defaulted so
    #: responses from older servers still deserialize.
    current_wait_ms: float = 0.0

    @property
    def mean_batch_k(self) -> float:
        """Average coalesced panel width per dispatched batch."""
        return (self.coalesced_requests / self.batches
                if self.batches else 0.0)


class _Request:
    __slots__ = ("req_id", "plan", "b", "deadline", "future", "enqueued")

    def __init__(self, req_id: int, plan: SolverPlan, b: np.ndarray,
                 deadline: float | None):
        self.req_id = req_id
        self.plan = plan
        self.b = b
        self.deadline = deadline
        self.future: Future = Future()
        self.enqueued = time.perf_counter()


class BatchDispatcher:
    """Coalesce concurrent single-RHS solve requests into panel executes.

    Parameters
    ----------
    max_wait_ms : float
        Latency budget: the longest a request may sit queued waiting
        for batch-mates before its group is dispatched anyway.  With
        ``adaptive_wait`` this is the *ceiling* of the live budget.
    adaptive_wait : bool
        Adapt the wait budget to traffic instead of holding it fixed.
        Every dispatch adjusts it: full batches (or a still-backlogged
        queue) double the budget up to ``max_wait_ms`` — sustained load
        is worth a little latency for wider panels — while underfull
        batches from an otherwise-empty queue halve it toward zero, so
        sparse traffic stops paying the wait at all.  Off by default
        (the fixed budget is the predictable choice for benchmarks).
    max_batch_k : int
        Panel-width cap; a group dispatches as soon as it has this many
        requests.
    max_queue_depth : int
        Admission bound on the total queued (not yet dispatched)
        requests; :meth:`submit` past it raises
        :class:`~repro.errors.ServiceOverloadError`.
    workers : int
        Threads executing batches (batches of *different* groups run
        concurrently; numpy/BLAS releases the GIL in the kernels).
    cache : FactorizationCache, optional
        Explicit cache handed to the engine (default: the plan-selected
        process-wide cache).
    store : CacheStore, optional
        Explicit persistent store handed to the engine (default: plans
        with ``cache="persistent"`` use the process-wide default
        store).
    latency_window : int
        Number of recent request latencies the p50/p99 gauges are
        computed over.
    """

    def __init__(self, *, max_wait_ms: float = 2.0, max_batch_k: int = 32,
                 max_queue_depth: int = 256, workers: int = 2,
                 cache=None, latency_window: int = 512,
                 adaptive_wait: bool = False, store=None):
        if max_batch_k < 1:
            raise ShapeError(f"max_batch_k must be >= 1, got {max_batch_k}")
        if max_queue_depth < 1:
            raise ShapeError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_wait_ms < 0:
            raise ShapeError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_wait_seconds = max_wait_ms / 1e3
        self.adaptive_wait = bool(adaptive_wait)
        #: Live wait budget; pinned at ``max_wait_seconds`` unless
        #: ``adaptive_wait``, in which case :meth:`_adapt_wait_locked`
        #: moves it within ``[0, max_wait_seconds]`` per dispatch.
        self._wait_budget = self.max_wait_seconds
        self.max_batch_k = int(max_batch_k)
        self.max_queue_depth = int(max_queue_depth)
        self._cache = cache
        #: Explicit persistent store handed to the engine (``None``
        #: lets each plan's ``cache`` axis pick the default store).
        self._store = store
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._queues: dict[tuple, deque[_Request]] = {}
        self._pending = 0
        self._in_flight = 0
        self._closing = False
        self._req_ids = itertools.count()
        self._batch_ids = itertools.count()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._overloads = 0
        self._expired = 0
        self._batches = 0
        self._coalesced = 0
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self._batcher = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True)
        self._batcher.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, plan: SolverPlan, b, *,
               timeout_s: float | None = None) -> Future:
        """Enqueue one single-RHS solve; returns a future of
        :class:`ServeResponse`.

        Requests against plans with equal ``cache_key()`` (same
        operator fingerprint, same factorization knobs) may be
        coalesced into one panel execution.  ``timeout_s`` arms a
        deadline covering the *queued* phase; raises
        :class:`~repro.errors.ServiceOverloadError` /
        :class:`~repro.errors.ServiceClosedError` synchronously on
        admission failure.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.ndim != 1:
            raise ShapeError(
                "the dispatcher takes single right-hand sides (1-D); "
                f"got shape {b.shape} — panels already batch, call "
                "engine.execute directly")
        if b.shape[0] != plan.order:
            raise ShapeError(
                f"right-hand side length {b.shape[0]} does not match "
                f"plan order {plan.order}")
        deadline = (None if timeout_s is None
                    else time.perf_counter() + float(timeout_s))
        with self._wake:
            if self._closing:
                raise ServiceClosedError(
                    "solver service is shut down; no new requests")
            if self._pending >= self.max_queue_depth:
                self._overloads += 1
                if obs.enabled():
                    obs.default_registry().counter(
                        "repro_serve_requests_total",
                        "Requests submitted to the solver service"
                    ).inc(1, status="overload")
                    self._publish_gauges_locked()
                raise ServiceOverloadError(
                    f"queue depth {self._pending} at the admission bound "
                    f"({self.max_queue_depth}); retry with backoff")
            req = _Request(next(self._req_ids), plan, b, deadline)
            self._queues.setdefault(plan.cache_key(), deque()).append(req)
            self._pending += 1
            self._submitted += 1
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_serve_requests_total",
                    "Requests submitted to the solver service"
                ).inc(1, status="admitted")
                self._publish_gauges_locked()
            self._wake.notify_all()
        return req.future

    # ------------------------------------------------------------------
    # Batching loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._wake:
                batch = None
                while batch is None:
                    self._expire_locked()
                    batch = self._pop_ready_locked()
                    if batch is not None:
                        break
                    if self._closing and self._pending == 0:
                        return
                    self._wake.wait(self._next_wakeup_locked())
            self._dispatch(batch)

    def _expire_locked(self) -> None:
        """Fail queued requests whose deadline has passed."""
        now = time.perf_counter()
        for key in list(self._queues):
            queue = self._queues[key]
            kept = deque(r for r in queue
                         if r.deadline is None or r.deadline > now)
            expired = len(queue) - len(kept)
            if not expired:
                continue
            for r in queue:
                if r.deadline is not None and r.deadline <= now:
                    self._fail_request_locked(
                        r, DeadlineExceededError(
                            f"request {r.req_id} spent "
                            f"{now - r.enqueued:.3f}s queued, past its "
                            "deadline"),
                        status="deadline")
                    self._expired += 1
            if kept:
                self._queues[key] = kept
            else:
                del self._queues[key]

    def _fail_request_locked(self, req: _Request, exc: Exception, *,
                             status: str) -> None:
        self._pending -= 1
        self._failed += 1
        if req.future.set_running_or_notify_cancel():
            req.future.set_exception(exc)
        if obs.enabled():
            obs.default_registry().counter(
                "repro_serve_requests_total",
                "Requests submitted to the solver service"
            ).inc(1, status=status)
            self._publish_gauges_locked()

    def _pop_ready_locked(self) -> list[_Request] | None:
        """Pop the most-overdue ready group, up to ``max_batch_k``."""
        now = time.perf_counter()
        best_key, best_age = None, -1.0
        for key, queue in self._queues.items():
            age = now - queue[0].enqueued
            ready = (self._closing or len(queue) >= self.max_batch_k
                     or age >= self._wait_budget)
            if ready and age > best_age:
                best_key, best_age = key, age
        if best_key is None:
            return None
        queue = self._queues[best_key]
        batch = [queue.popleft()
                 for _ in range(min(len(queue), self.max_batch_k))]
        if not queue:
            del self._queues[best_key]
        return batch

    def _next_wakeup_locked(self) -> float | None:
        """Seconds until the next batch-ready or deadline event."""
        now = time.perf_counter()
        horizon = None
        for queue in self._queues.values():
            t = queue[0].enqueued + self._wait_budget
            horizon = t if horizon is None else min(horizon, t)
            for r in queue:
                if r.deadline is not None:
                    horizon = min(horizon, r.deadline)
        if horizon is None:
            return None
        return max(0.0, horizon - now)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _adapt_wait_locked(self, batch_k: int) -> None:
        """Move the wait budget toward what the traffic justifies.

        Multiplicative in both directions (doubling under load, halving
        when idle) so the budget tracks load shifts within a few
        dispatches in either direction; a floor snap to exactly 0 makes
        the idle steady state genuinely wait-free rather than
        asymptotic.
        """
        if not self.adaptive_wait:
            return
        full = self.max_wait_seconds
        if full <= 0.0:
            return
        if batch_k >= self.max_batch_k or self._pending > 0:
            # Demand outruns the panel cap (or a backlog remains):
            # waiting buys wider panels, so grow toward the ceiling.
            self._wait_budget = min(
                full, max(self._wait_budget * 2.0, full / 8.0))
        else:
            decayed = self._wait_budget * 0.5
            self._wait_budget = 0.0 if decayed < full / 64.0 else decayed
        if obs.enabled():
            obs.default_registry().gauge(
                "repro_serve_wait_budget_ms",
                "Adaptive batching wait budget currently in force"
            ).set(self._wait_budget * 1e3)

    def _dispatch(self, batch: list[_Request]) -> None:
        batch_id = next(self._batch_ids)
        with self._wake:
            self._pending -= len(batch)
            self._in_flight += 1
            self._batches += 1
            self._coalesced += len(batch)
            self._adapt_wait_locked(len(batch))
            if obs.enabled():
                reg = obs.default_registry()
                reg.counter(
                    "repro_serve_batches_total",
                    "Coalesced batches dispatched to the engine").inc(1)
                reg.gauge(
                    "repro_serve_batch_occupancy",
                    "Coalesced panel width of the most recent batch"
                ).set(len(batch))
                self._publish_gauges_locked()
        self._executor.submit(self._run_batch, batch, batch_id)

    def _run_batch(self, batch: list[_Request], batch_id: int) -> None:
        from repro.engine.engine import execute_many
        live = [r for r in batch
                if r.future.set_running_or_notify_cancel()]
        finished = False
        try:
            responses: list[ServeResponse] = []
            if live:
                dispatched = time.perf_counter()
                results = execute_many(live[0].plan,
                                       [r.b for r in live],
                                       cache=self._cache,
                                       store=self._store)
                done = time.perf_counter()
                for r, res in zip(live, results):
                    rec = ServeRecord(
                        request_id=r.req_id, batch_id=batch_id,
                        batch_k=len(live),
                        queue_seconds=dispatched - r.enqueued,
                        wall_seconds=done - r.enqueued,
                        algorithm=res.algorithm,
                        cache_hit=res.cache_hit,
                        order=r.plan.order, start=r.enqueued)
                    responses.append(ServeResponse(
                        x=res.x, record=rec, execution=res.record))
            # Count before resolving: a caller holding its reply must
            # already be visible in stats()/metrics.
            self._finish_batch(live, error=None)
            finished = True
            for r, resp in zip(live, responses):
                r.future.set_result(resp)
        except BaseException as exc:  # noqa: BLE001 - forwarded to futures
            if not finished:
                self._finish_batch(live, error=exc)
            for r in live:
                if not r.future.done():
                    r.future.set_exception(exc)

    def _finish_batch(self, live: list[_Request],
                      error: BaseException | None) -> None:
        with self._wake:
            self._in_flight -= 1
            if error is None:
                self._completed += len(live)
                for r in live:
                    self._latencies.append(
                        time.perf_counter() - r.enqueued)
            else:
                self._failed += len(live)
            if obs.enabled():
                obs.default_registry().counter(
                    "repro_serve_requests_total",
                    "Requests submitted to the solver service"
                ).inc(len(live),
                      status="ok" if error is None else "error")
                self._publish_gauges_locked()
            self._wake.notify_all()

    # ------------------------------------------------------------------
    # Introspection / shutdown
    # ------------------------------------------------------------------
    def _latency_percentiles_locked(self) -> tuple[float, float]:
        if not self._latencies:
            return 0.0, 0.0
        ordered = sorted(self._latencies)
        return _percentile(ordered, 0.50), _percentile(ordered, 0.99)

    def _publish_gauges_locked(self) -> None:
        reg = obs.default_registry()
        reg.gauge("repro_serve_queue_depth",
                  "Requests queued awaiting a batch").set(self._pending)
        reg.gauge("repro_serve_in_flight_batches",
                  "Batches currently executing").set(self._in_flight)
        p50, p99 = self._latency_percentiles_locked()
        reg.gauge("repro_serve_latency_p50_seconds",
                  "Median end-to-end request latency "
                  "(sliding window)").set(p50)
        reg.gauge("repro_serve_latency_p99_seconds",
                  "99th-percentile end-to-end request latency "
                  "(sliding window)").set(p99)

    def stats(self) -> ServeStats:
        """Consistent snapshot of the service counters."""
        with self._lock:
            p50, p99 = self._latency_percentiles_locked()
            return ServeStats(
                submitted=self._submitted, completed=self._completed,
                failed=self._failed, overloads=self._overloads,
                deadline_expirations=self._expired,
                batches=self._batches,
                coalesced_requests=self._coalesced,
                queue_depth=self._pending,
                in_flight_batches=self._in_flight,
                latency_p50_seconds=p50, latency_p99_seconds=p99,
                current_wait_ms=self._wait_budget * 1e3)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closing

    def close(self, *, drain: bool = True, timeout: float | None = 30.0
              ) -> None:
        """Stop admissions and shut down.

        With ``drain=True`` (the default) everything already queued is
        dispatched immediately — the latency budget no longer applies —
        and the call returns once every in-flight batch has completed,
        so no admitted request is ever dropped.  With ``drain=False``
        queued requests fail with
        :class:`~repro.errors.ServiceClosedError` (in-flight batches
        still complete).  Idempotent.
        """
        with self._wake:
            first = not self._closing
            self._closing = True
            if not drain:
                for queue in self._queues.values():
                    for r in queue:
                        self._fail_request_locked(
                            r, ServiceClosedError(
                                "solver service shut down without "
                                "draining"),
                            status="closed")
                self._queues.clear()
            self._wake.notify_all()
        if first:
            self._batcher.join(timeout)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._wake:
            while self._in_flight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    break
                self._wake.wait(remaining)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "BatchDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)
