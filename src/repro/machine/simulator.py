"""The SPMD discrete-event scheduler.

Each rank runs a generator; the scheduler interleaves them, advancing
per-rank virtual clocks.  Point-to-point messages carry an arrival time
(sender clock + modeled transfer time); receivers wait for the later of
their own clock and the arrival.  Collectives (broadcast, barrier)
complete at ``max(entry clocks) + collective cost`` and book the spread
as idle time per rank — the synchronization overhead that drives the
Figure 9 crossover.

The machine is deterministic: identical programs and inputs produce
identical clocks, traces and results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.blas.cray import T3DNetworkParameters
from repro.errors import DeadlockError, MachineError, ShapeError
from repro.machine.network import LineTopology, Topology
from repro.machine.ops import Barrier, Broadcast, Compute, Put, Recv, Reduce
from repro.machine.trace import Trace

__all__ = ["Machine", "MachineReport", "RankReport"]


@dataclass
class RankReport:
    """Per-rank accounting for one simulated run."""

    rank: int
    time: float = 0.0
    by_category: dict[str, float] = field(default_factory=dict)
    messages_sent: int = 0
    words_sent: int = 0
    #: words received through broadcasts (the root's payload size is
    #: charged to every participating rank)
    bcast_words: int = 0
    #: words this rank contributed to sum-reductions
    reduce_words: int = 0
    result: Any = None

    def charge(self, seconds: float, category: str) -> None:
        """Advance this rank's clock, attributing to ``category``."""
        self.time += seconds
        self.by_category[category] = (
            self.by_category.get(category, 0.0) + seconds)


@dataclass
class MachineReport:
    """Aggregate result of :meth:`Machine.run`."""

    nproc: int
    ranks: list[RankReport]
    #: event-interval log (populated when the machine was built with
    #: ``trace=True``)
    trace: Trace | None = None

    @property
    def makespan(self) -> float:
        """Simulated wall time (max over rank clocks)."""
        return max(r.time for r in self.ranks)

    @property
    def results(self) -> list[Any]:
        return [r.result for r in self.ranks]

    def total_by_category(self) -> dict[str, float]:
        """Machine-wide time per phase category (summed over ranks)."""
        out: dict[str, float] = {}
        for r in self.ranks:
            for k, v in r.by_category.items():
                out[k] = out.get(k, 0.0) + v
        return out

    def category_of_critical_rank(self) -> dict[str, float]:
        """Breakdown of the slowest rank (the makespan owner)."""
        worst = max(self.ranks, key=lambda r: r.time)
        return dict(worst.by_category)

    def words_by_rank(self) -> dict[int, int]:
        """Point-to-point words sent per rank (the shift traffic).

        The real multiprocess backend counts the same quantity per PE,
        so this is the cross-backend comparison surface for
        communication volume.
        """
        return {r.rank: r.words_sent for r in self.ranks}

    def broadcast_words_by_rank(self) -> dict[int, int]:
        """Broadcast words received per rank (§6.3 transform panels in
        the factorization programs, ``y_i``/``x_i`` pieces in the solve
        program).  The real multiprocess backend counts the same
        quantity per PE."""
        return {r.rank: r.bcast_words for r in self.ranks}

    def reduce_words_by_rank(self) -> dict[int, int]:
        """Words contributed per rank to sum-reductions (the backward
        solve sweep's row sums)."""
        return {r.rank: r.reduce_words for r in self.ranks}


class _RankState:
    __slots__ = ("gen", "report", "blocked_on", "finished")

    def __init__(self, gen, report: RankReport):
        self.gen = gen
        self.report = report
        self.blocked_on = None   # None | ("recv", src, tag) | ("coll", op)
        self.finished = False


class Machine:
    """A simulated distributed-memory machine.

    Parameters
    ----------
    nproc : int
        Number of processing elements (a linear array of PEs, possibly
        embedded in a richer topology).
    network : T3DNetworkParameters
        Communication cost model (defaults to the paper's T3D numbers).
    topology : Topology
        Hop-distance metric; defaults to a linear array.
    """

    def __init__(self, nproc: int,
                 network: T3DNetworkParameters | None = None,
                 topology: Topology | None = None,
                 trace: bool = False):
        if nproc <= 0:
            raise ShapeError(f"nproc must be positive, got {nproc}")
        self.nproc = nproc
        self.network = network or T3DNetworkParameters()
        self.topology = topology or LineTopology(nproc)
        if self.topology.nproc != nproc:
            raise ShapeError(
                f"topology is for {self.topology.nproc} ranks, not {nproc}")
        self._trace_enabled = trace
        self._trace: Trace | None = None

    def _charge(self, rep: RankReport, seconds: float,
                category: str) -> None:
        start = rep.time
        rep.charge(seconds, category)
        if self._trace is not None:
            self._trace.add(rep.rank, start, rep.time, category)

    # ------------------------------------------------------------------
    def run(self, program: Callable, *args, **kwargs) -> MachineReport:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank.

        ``program`` must be a generator function; it receives a context
        with ``rank`` and ``nproc`` attributes.  Returns the machine
        report with per-rank virtual times and program return values.
        """
        np_ = self.nproc
        self._trace = Trace() if self._trace_enabled else None
        reports = [RankReport(rank=r) for r in range(np_)]
        states: list[_RankState] = []
        for r in range(np_):
            ctx = _Context(rank=r, nproc=np_)
            gen = program(ctx, *args, **kwargs)
            if not hasattr(gen, "send"):
                raise MachineError(
                    "program must be a generator function (use `yield`)")
            states.append(_RankState(gen, reports[r]))

        # mailbox[dest][(src, tag)] -> deque of (arrival_time, payload)
        mailbox: list[dict[tuple, deque]] = [dict() for _ in range(np_)]
        # Collective rendezvous: op-type -> list of (rank, op) waiting.
        collective: list[tuple[int, Any]] = []
        runnable = deque(range(np_))
        pending_value: dict[int, Any] = {r: None for r in range(np_)}
        alive = np_

        while alive > 0:
            progressed = False
            while runnable:
                r = runnable.popleft()
                st = states[r]
                if st.finished:
                    continue
                progressed = True
                self._drive(r, st, states, mailbox, collective,
                            runnable, pending_value)
            if all(st.finished for st in states):
                break
            # No runnable rank: see whether a collective can fire.
            if collective and len(collective) == sum(
                    1 for st in states if not st.finished):
                self._fire_collective(states, collective, runnable,
                                      pending_value)
                continue
            if not progressed and not runnable:
                blocked = [(st.report.rank, st.blocked_on)
                           for st in states if not st.finished]
                raise DeadlockError(
                    f"all ranks blocked with no deliverable event: "
                    f"{blocked}")
            alive = sum(1 for st in states if not st.finished)
        return MachineReport(nproc=np_, ranks=reports, trace=self._trace)

    # ------------------------------------------------------------------
    def _drive(self, r, st, states, mailbox, collective, runnable,
               pending_value) -> None:
        """Advance rank ``r`` until it blocks or finishes."""
        if st.blocked_on is not None and st.blocked_on[0] == "recv":
            # Resuming a rank parked on Recv: deliver the message now.
            key = st.blocked_on[1]
            box = mailbox[r].get(key)
            if not box:
                return  # spurious wake-up; stay blocked
            arrival, payload = box.popleft()
            rep = st.report
            if arrival > rep.time:
                self._charge(rep, arrival - rep.time, "idle")
            pending_value[r] = payload
            st.blocked_on = None
        while True:
            try:
                op = st.gen.send(pending_value[r])
            except StopIteration as stop:
                st.report.result = stop.value
                st.finished = True
                return
            pending_value[r] = None
            rep = st.report
            if isinstance(op, Compute):
                if op.seconds < 0:
                    raise MachineError("negative compute time")
                self._charge(rep, op.seconds, op.category)
                continue
            if isinstance(op, Put):
                if not (0 <= op.dest < self.nproc):
                    raise MachineError(f"put to invalid rank {op.dest}")
                hops = self.topology.hops(r, op.dest)
                dt = self.network.put_time(op.words, hops, op.count)
                self._charge(rep, dt, op.category)
                rep.messages_sent += max(1, op.count)
                rep.words_sent += op.words
                key = (r, op.tag)
                mailbox[op.dest].setdefault(key, deque()).append(
                    (rep.time, op.payload))
                # A receiver may have been waiting on this message.
                self._unblock_receiver(op.dest, key, states, runnable)
                continue
            if isinstance(op, Recv):
                key = (op.src, op.tag)
                box = mailbox[r].get(key)
                if box:
                    arrival, payload = box.popleft()
                    if arrival > rep.time:
                        self._charge(rep, arrival - rep.time, "idle")
                    pending_value[r] = payload
                    continue
                st.blocked_on = ("recv", key)
                return
            if isinstance(op, (Broadcast, Reduce, Barrier)):
                collective.append((r, op))
                st.blocked_on = ("coll", op)
                if len(collective) == sum(
                        1 for s in states if not s.finished):
                    self._fire_collective(states, collective, runnable,
                                          pending_value)
                return
            raise MachineError(f"unknown operation {op!r}")

    def _unblock_receiver(self, dest, key, states, runnable) -> None:
        # Leave blocked_on set: _drive's resume path uses it to know it
        # must deliver the message into the parked Recv.
        st = states[dest]
        if st.blocked_on == ("recv", key):
            runnable.append(dest)

    def _fire_collective(self, states, collective, runnable,
                         pending_value) -> None:
        """All live ranks have arrived at a collective: complete it."""
        ops = {type(op) for _, op in collective}
        if len(ops) != 1:
            kinds = sorted(t.__name__ for t in ops)
            raise DeadlockError(
                f"ranks disagree on the collective: {kinds}")
        start = max(states[r].report.time for r, _ in collective)
        first_op = collective[0][1]
        results: dict[int, Any] = {}
        if isinstance(first_op, Broadcast):
            roots = {op.root for _, op in collective}
            if len(roots) != 1:
                raise DeadlockError(f"broadcast roots disagree: {roots}")
            root = roots.pop()
            payload = None
            words = 0
            for r, op in collective:
                if r == root:
                    payload = op.payload
                    words = op.words
            cost = self.network.broadcast_time(words, self.nproc)
            results = {r: payload for r, _ in collective}
            for r2, _op2 in collective:
                states[r2].report.bcast_words += words
            category = first_op.category
        elif isinstance(first_op, Reduce):
            roots = {op.root for _, op in collective}
            if len(roots) != 1:
                raise DeadlockError(f"reduce roots disagree: {roots}")
            root = roots.pop()
            total = None
            words = 0
            for _r, op in collective:
                words = max(words, op.words)
                if op.payload is not None:
                    total = (op.payload.copy() if total is None
                             else total + op.payload)
            cost = self.network.broadcast_time(words, self.nproc)
            results = {r: (total if r == root else None)
                       for r, _ in collective}
            for r2, op2 in collective:
                states[r2].report.reduce_words += op2.words
            category = first_op.category
        else:
            cost = self.network.barrier_time(self.nproc)
            results = {r: None for r, _ in collective}
            category = first_op.category
        for r, _op in collective:
            rep = states[r].report
            if start > rep.time:
                self._charge(rep, start - rep.time, "idle")
            self._charge(rep, cost, category)
            states[r].blocked_on = None
            pending_value[r] = results[r]
            runnable.append(r)
        collective.clear()


@dataclass(frozen=True)
class _Context:
    rank: int
    nproc: int
