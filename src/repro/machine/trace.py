"""Event traces and utilization analysis for simulated runs.

The paper closes with "a performance analysis of the various data
distribution schemes is underway" — this module is that instrumentation:
per-rank event intervals (compute / communication / idle), utilization
summaries, and a text Gantt rendering for small runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.schema import COMPUTE_KINDS

__all__ = ["TraceEvent", "Trace", "render_gantt"]


@dataclass(frozen=True)
class TraceEvent:
    """One half-open interval ``[start, end)`` of rank activity."""

    rank: int
    start: float
    end: float
    kind: str

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Trace:
    """Ordered per-run event log with summary queries."""

    events: list[TraceEvent] = field(default_factory=list)

    def add(self, rank: int, start: float, end: float, kind: str) -> None:
        """Append one interval (zero-length intervals are dropped)."""
        if end > start:
            self.events.append(TraceEvent(rank, start, end, kind))

    def for_rank(self, rank: int) -> list[TraceEvent]:
        """Events of one rank, in insertion order."""
        return [e for e in self.events if e.rank == rank]

    def total(self, kind: str | None = None) -> float:
        """Total traced seconds, optionally restricted to one kind."""
        return sum(e.duration for e in self.events
                   if kind is None or e.kind == kind)

    def utilization(self, nproc: int, makespan: float) -> float:
        """Fraction of machine-time spent in compute phases.

        "Compute" is defined by the shared
        :data:`repro.obs.schema.COMPUTE_KINDS` list — the same one the
        span exporter uses — so a phase kind added there counts here
        too (and cannot silently count as idle).
        """
        if makespan <= 0:
            return 0.0
        busy = sum(e.duration for e in self.events
                   if e.kind in COMPUTE_KINDS)
        return busy / (nproc * makespan)

    def to_records(self) -> list[dict]:
        """Flatten into the unified trace schema (JSONL-ready records).

        Same record shape as the engine's span exporter
        (:func:`repro.obs.span_records`), so simulated and real runs
        share one downstream pipeline.
        """
        from repro.obs.export import trace_records
        return trace_records(self)

    def phase_fractions(self) -> dict[str, float]:
        """Share of total traced time per phase kind."""
        tot = self.total()
        if tot == 0:
            return {}
        out: dict[str, float] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0.0) + e.duration
        return {k: v / tot for k, v in sorted(out.items())}


def render_gantt(trace: Trace, nproc: int, makespan: float, *,
                 width: int = 72) -> str:
    """ASCII Gantt chart (one row per rank) for small simulated runs."""
    if makespan <= 0:
        return "(empty trace)"
    glyph = {k: "#" for k in COMPUTE_KINDS}
    glyph.update({"blocking": "B", "shift": ">", "broadcast": "*",
                  "barrier": "|", "idle": "."})
    lines = []
    for r in range(nproc):
        row = [" "] * width
        for e in trace.for_rank(r):
            a = int(e.start / makespan * (width - 1))
            b = max(a + 1, int(e.end / makespan * (width - 1)) + 1)
            ch = glyph.get(e.kind, "?")
            for c in range(a, min(b, width)):
                row[c] = ch
        lines.append(f"PE{r:<3d} " + "".join(row))
    legend = "  ".join(f"{v}={k}" for k, v in glyph.items())
    return "\n".join(lines) + f"\n      [{legend}]"
