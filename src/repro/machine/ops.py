"""Operations a rank program may yield to the simulator.

A rank program is a generator: ``yield`` hands an operation to the
scheduler; the value of the ``yield`` expression is the operation's
result (the payload for :class:`Recv` and :class:`Broadcast`, ``None``
otherwise).  Example::

    def program(ctx):
        yield Compute(1e-6, category="blocking")
        if ctx.rank == 0:
            yield Put(dest=1, tag="x", payload=arr, words=arr.size)
        else:
            arr = yield Recv(src=0, tag="x")
        yield Barrier()
        return result
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Compute", "Put", "Recv", "Broadcast", "Reduce", "Barrier"]


@dataclass(frozen=True)
class Compute:
    """Charge ``seconds`` of local compute time.

    ``category`` labels the phase in the timing breakdown (e.g.
    ``"blocking"`` vs ``"application"``).
    """

    seconds: float
    category: str = "compute"


@dataclass(frozen=True)
class Put:
    """One-sided put of ``payload`` into ``dest``'s mailbox (shmem-style).

    ``words`` is the message volume in 8-byte words (used for costing;
    the payload itself travels by reference-copy).  The sender is charged
    the full transfer time, matching the blocking ``shmem_put``.
    """

    dest: int
    tag: Any
    payload: Any
    words: int
    #: Number of underlying shmem_put messages this transfer stands for
    #: (e.g. one per shifted block); each is charged the per-message
    #: latency, the payload bytes are charged once.
    count: int = 1
    category: str = "shift"


@dataclass(frozen=True)
class Recv:
    """Block until a message with ``tag`` from ``src`` has arrived.

    Completes at ``max(local clock, arrival time)``; waiting is accounted
    as idle time.
    """

    src: int
    tag: Any


@dataclass(frozen=True)
class Broadcast:
    """Collective broadcast from ``root``; every rank must participate.

    The root passes ``payload`` and ``words``; the call returns the
    payload on every rank.  Completion is ``max(entry clocks) +
    broadcast_time(words, NP)``; the spread between a rank's entry and
    the collective start is accounted as idle.
    """

    root: int
    payload: Any = None
    words: int = 0
    category: str = "broadcast"


@dataclass(frozen=True)
class Reduce:
    """Collective sum-reduction to ``root``; every rank must participate.

    Each rank passes its ``payload`` (a NumPy array or ``None`` ≡ zero);
    the root's call returns the elementwise sum, the others get ``None``.
    Costed like the broadcast tree (log₂ NP stages of ``words``).
    """

    root: int
    payload: Any = None
    words: int = 0
    category: str = "reduce"


@dataclass(frozen=True)
class Barrier:
    """Full synchronization; completes at ``max(entry clocks) +
    barrier_time(NP)``."""

    category: str = "barrier"
