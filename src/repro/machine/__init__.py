"""Distributed-memory machine simulator.

A deterministic discrete-event simulator for SPMD message-passing
programs, standing in for the Cray T3D of Section 7.  Rank programs are
Python generators that yield communication/compute operations; the
scheduler advances per-rank virtual clocks using the network cost model
(:class:`~repro.blas.cray.T3DNetworkParameters`) and whatever node
compute costs the program charges.  The *numerics execute for real* —
payloads are actual NumPy arrays — so distributed algorithms can be
bit-checked against their serial counterparts while their virtual timing
reflects the modeled machine.
"""

from repro.machine.ops import (
    Compute,
    Put,
    Recv,
    Broadcast,
    Reduce,
    Barrier,
)
from repro.machine.network import Topology, LineTopology, Torus3D
from repro.machine.simulator import Machine, MachineReport, RankReport

__all__ = [
    "Compute",
    "Put",
    "Recv",
    "Broadcast",
    "Reduce",
    "Barrier",
    "Topology",
    "LineTopology",
    "Torus3D",
    "Machine",
    "MachineReport",
    "RankReport",
]
