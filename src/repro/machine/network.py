"""Interconnect topologies: hop counts between ranks.

The T3D is a 3-D torus (Section 7.1.4); the algorithms treat the machine
as a linear array of PEs embedded in it.  Hop count feeds the per-message
latency term of the network cost model.
"""

from __future__ import annotations

from math import ceil, log2

from repro.errors import ShapeError

__all__ = ["Topology", "LineTopology", "Torus3D"]


class Topology:
    """Base class: distance metric over ranks ``0 … n−1``."""

    def __init__(self, nproc: int):
        if nproc <= 0:
            raise ShapeError(f"nproc must be positive, got {nproc}")
        self.nproc = nproc

    def hops(self, src: int, dst: int) -> int:
        """Link hops between two ranks."""
        raise NotImplementedError

    def _check(self, r: int) -> None:
        if not (0 <= r < self.nproc):
            raise ShapeError(f"rank {r} out of range for NP={self.nproc}")


class LineTopology(Topology):
    """Simple linear array; distance is ``|dst − src|``."""

    def hops(self, src: int, dst: int) -> int:
        """``|dst − src|`` along the line."""
        self._check(src)
        self._check(dst)
        return abs(dst - src)


class Torus3D(Topology):
    """3-D torus with ranks folded into a near-cubic grid (T3D style).

    The grid dimensions are the most cubic factorization of ``nproc``
    into three factors; distance is the sum of per-axis wrap-around
    distances.
    """

    def __init__(self, nproc: int):
        super().__init__(nproc)
        self.dims = self._grid_dims(nproc)

    @staticmethod
    def _grid_dims(n: int) -> tuple[int, int, int]:
        best = (n, 1, 1)
        best_score = n + 2
        for a in range(1, int(round(n ** (1 / 3))) + 2):
            if n % a:
                continue
            rem = n // a
            for b in range(a, int(rem ** 0.5) + 1):
                if rem % b:
                    continue
                c = rem // b
                score = max(a, b, c)
                if score < best_score:
                    best_score = score
                    best = (a, b, c)
        return best

    def _coords(self, r: int) -> tuple[int, int, int]:
        a, b, _c = self.dims
        return (r % a, (r // a) % b, r // (a * b))

    def hops(self, src: int, dst: int) -> int:
        """Sum of per-axis wrap-around distances on the torus."""
        self._check(src)
        self._check(dst)
        cs, cd = self._coords(src), self._coords(dst)
        total = 0
        for axis in range(3):
            d = abs(cd[axis] - cs[axis])
            total += min(d, self.dims[axis] - d)
        return max(total, 0)

    def diameter(self) -> int:
        """Maximum hop distance (used by collective cost sanity checks)."""
        return sum(dim // 2 for dim in self.dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus3D(nproc={self.nproc}, dims={self.dims})"


def log2ceil(n: int) -> int:
    """⌈log₂ n⌉ for n ≥ 1 (tree-stage counts)."""
    if n < 1:
        raise ShapeError(f"n must be ≥ 1, got {n}")
    return ceil(log2(n)) if n > 1 else 0
