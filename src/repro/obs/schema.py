"""The unified trace-record schema shared by real and simulated runs.

Both instrumentation sources — the in-process span tracer
(:mod:`repro.obs.spans`) and the simulated-machine event log
(:class:`repro.machine.trace.Trace`) — export the same flat record
shape, so one consumer (the JSONL sink, the CI artifact, an external
trace viewer) handles either:

``{"v": 1, "source": str, "id": int, "parent": int | None,
   "name": str, "kind": str, "rank": int | None,
   "start": float, "end": float, "attrs": dict}``

``kind`` classifies the record for utilization-style roll-ups;
:data:`COMPUTE_KINDS` is the single authoritative list of kinds that
count as useful compute.  Both ``Trace.utilization`` (simulated runs)
and span-based roll-ups consult it, so adding a new phase kind in one
place cannot silently count as idle in the other.
"""

from __future__ import annotations

__all__ = [
    "SCHEMA_VERSION",
    "COMPUTE_KINDS",
    "COMM_KINDS",
    "KIND_EXECUTION",
    "KIND_REQUEST",
    "SOURCE_ENGINE",
    "SOURCE_SIMULATOR",
    "SOURCE_MULTIPROCESS",
    "SOURCE_SERVE",
    "is_compute_kind",
    "make_record",
]

#: Version tag stamped on every exported record.
SCHEMA_VERSION = 1

#: Phase kinds that count as useful compute in utilization roll-ups.
#: The simulated SPMD programs emit "compute"; the Schur elimination
#: loop splits its work into "blocking" / "panel" (building reflectors)
#: and "application" (applying them) — Section 6's cost split.
COMPUTE_KINDS = ("compute", "blocking", "application", "panel")

#: Communication / synchronization kinds (everything else is idle).
#: "gather" is the collection of the distributed ``R`` factor.
COMM_KINDS = ("shift", "broadcast", "barrier", "put", "recv", "gather")

#: Whole-execution summary records (one per ``engine.execute``): wall
#: time, RHS panel width, model vs counted flops, cache hit, plus the
#: precision axis — requested ``precision`` ("fp64"/"fp32"/"mixed"),
#: the ``factor_dtype`` that actually drove the solves, and
#: ``refine_sweeps`` (None for a plain direct solve).  Not a
#: compute kind — the execution's compute is broken out in its child
#: span records; this one exists so a metrics endpoint can consume
#: per-solve throughput without re-aggregating the span tree.
KIND_EXECUTION = "execution"

#: Per-request summary records emitted by the solver service (one per
#: request that completed through :mod:`repro.serve`): queue wait, the
#: batch it was coalesced into and that batch's panel width, end-to-end
#: latency.  Like :data:`KIND_EXECUTION` it is a summary, not a compute
#: kind — the numeric work appears separately as the batch's
#: ``engine.execute`` records.
KIND_REQUEST = "request"

SOURCE_ENGINE = "engine"
SOURCE_SIMULATOR = "simulator"
#: Records exported by the real multiprocess backend's per-PE workers.
SOURCE_MULTIPROCESS = "multiprocess"
#: Records exported by the solver service's request dispatcher.
SOURCE_SERVE = "serve"


def is_compute_kind(kind: str) -> bool:
    """Whether ``kind`` counts toward compute utilization."""
    return kind in COMPUTE_KINDS


def make_record(*, source: str, rec_id: int, parent: int | None,
                name: str, kind: str, rank: int | None,
                start: float, end: float,
                attrs: dict | None = None) -> dict:
    """Assemble one schema-conforming record (plain JSON-ready dict)."""
    return {
        "v": SCHEMA_VERSION,
        "source": source,
        "id": int(rec_id),
        "parent": None if parent is None else int(parent),
        "name": name,
        "kind": kind,
        "rank": None if rank is None else int(rank),
        "start": float(start),
        "end": float(end),
        "attrs": dict(attrs or {}),
    }
