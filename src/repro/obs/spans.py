"""Hierarchical wall-time spans with a zero-overhead disabled mode.

The tracer is a per-thread stack of :class:`Span` objects.  Entering
``span("engine.factor", algorithm="spd-schur")`` pushes a child of the
current span, times the enclosed block with ``perf_counter`` and pops it
on exit; attributes (flop-model values, cache hits, iteration counts)
attach to the span, and phase accumulators (:func:`record_phase`) fold
sub-span-granularity wall time — the Schur loop's blocking /
application / panel split — into the innermost open span without
allocating per-call child spans.

Tracing is **off by default**.  When disabled, :func:`span` returns a
shared no-op context manager and touches neither the clock nor the span
stack, so instrumented hot paths cost one module-global check.  Enable
with :func:`enable`, per-process with ``REPRO_OBS=1`` in the
environment, or per-run through the CLI ``--profile`` flag.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Profile",
    "span",
    "enabled",
    "enable",
    "disable",
    "adopt_span",
    "current_span",
    "record_phase",
    "profile_from",
    "render_tree",
]

_ENABLED = os.environ.get("REPRO_OBS", "").lower() not in ("", "0", "false")


def enabled() -> bool:
    """Whether span tracing is currently on."""
    return _ENABLED


def enable() -> None:
    """Turn span tracing on for the whole process."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn span tracing off (instrumentation reverts to no-ops)."""
    global _ENABLED
    _ENABLED = False


@dataclass
class Span:
    """One timed interval in the execution hierarchy.

    ``start``/``end`` are ``perf_counter`` seconds; ``attributes`` carry
    scalar annotations (model flops, cache hits, iteration counts);
    ``phases`` accumulates named sub-interval wall time recorded through
    :func:`record_phase` (e.g. the blocking/application split of one
    factorization, too fine-grained for child spans of their own).
    """

    name: str
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    phases: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    parent: "Span | None" = field(default=None, repr=False, compare=False)

    @property
    def duration(self) -> float:
        """Elapsed seconds (to now when the span is still open)."""
        return (self.end if self.end is not None
                else time.perf_counter()) - self.start

    def set(self, **attrs) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attributes.update(attrs)

    def walk(self):
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """Recursive JSON-ready representation."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "phases": dict(self.phases),
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpan:
    """No-op span record handed out by the disabled fast path."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass

    def __bool__(self) -> bool:
        return False


class _NullContext:
    """No-op context manager (shared singleton, zero per-call state)."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullContext()


class _ThreadState(threading.local):
    def __init__(self):
        self.stack: list[Span] = []


_STATE = _ThreadState()


class _SpanContext:
    """Context manager that pushes/pops one :class:`Span`."""

    __slots__ = ("_span",)

    def __init__(self, name: str, attrs: dict):
        self._span = Span(name=name, attributes=attrs)

    def __enter__(self) -> Span:
        sp = self._span
        stack = _STATE.stack
        if stack:
            sp.parent = stack[-1]
            stack[-1].children.append(sp)
        stack.append(sp)
        sp.start = time.perf_counter()
        return sp

    def __exit__(self, *exc):
        sp = _STATE.stack.pop()
        sp.end = time.perf_counter()
        return False


def span(name: str, **attrs):
    """Open a span named ``name`` for the enclosed block.

    Returns a context manager yielding the :class:`Span` (or a shared
    no-op object when tracing is disabled — safe to call ``.set`` on in
    either case).
    """
    if not _ENABLED:
        return _NULL_CONTEXT
    return _SpanContext(name, attrs)


def current_span() -> Span | None:
    """The innermost open span of this thread, or ``None``."""
    stack = _STATE.stack
    return stack[-1] if stack else None


def adopt_span(sp: Span) -> bool:
    """Graft an externally built (closed) span under the current span.

    The multiprocess backend reconstructs per-PE worker spans from
    records shipped back over a queue; adopting them here makes them
    ordinary children of the enclosing ``engine.factor`` span, so
    profiles, ``render_tree`` and the JSONL exporter see per-PE data
    with no special casing.  Returns ``False`` (and adopts nothing)
    when tracing is off or no span is open.
    """
    if not _ENABLED:
        return False
    stack = _STATE.stack
    if not stack:
        return False
    sp.parent = stack[-1]
    stack[-1].children.append(sp)
    return True


def record_phase(name: str, seconds: float) -> None:
    """Fold ``seconds`` of wall time into the current span's ``phases``.

    No-op when no span is open; callers on hot paths should guard with
    :func:`enabled` before timing.
    """
    stack = _STATE.stack
    if stack:
        phases = stack[-1].phases
        phases[name] = phases.get(name, 0.0) + seconds


# ----------------------------------------------------------------------
# Profiles (span tree + metrics snapshot)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Profile:
    """Everything one execution observed: span tree + metric values.

    Attached to :class:`repro.engine.ExecutionResult` (``.profile``)
    when tracing is enabled; ``render()`` gives the human-readable tree
    + metrics table the CLI ``--profile`` flag prints.
    """

    root: Span
    metrics: dict

    def render(self) -> str:
        """Span tree followed by a metrics table."""
        parts = [render_tree(self.root)]
        if self.metrics:
            width = max(len(k) for k in self.metrics)
            parts.append("metrics:")
            for key in sorted(self.metrics):
                value = self.metrics[key]
                text = f"{value:.6g}" if isinstance(value, float) else str(value)
                parts.append(f"  {key:<{width}}  {text}")
        return "\n".join(parts)

    def to_records(self) -> list[dict]:
        """Flat schema records (see :mod:`repro.obs.export`)."""
        from repro.obs.export import span_records
        return span_records(self.root)


def profile_from(sp, metrics: dict | None = None) -> Profile | None:
    """Build a :class:`Profile` from a *closed root* span.

    Returns ``None`` for the disabled-mode null span and for nested
    spans (the enclosing root will capture those).
    """
    if not isinstance(sp, Span) or sp.parent is not None or sp.end is None:
        return None
    if metrics is None:
        from repro.obs.metrics import default_registry
        metrics = default_registry().snapshot()
    return Profile(root=sp, metrics=metrics)


def _format_attrs(sp: Span) -> str:
    parts = []
    for key in sorted(sp.attributes):
        value = sp.attributes[key]
        if isinstance(value, float):
            value = f"{value:.4g}"
        parts.append(f"{key}={value}")
    for key in sorted(sp.phases):
        parts.append(f"{key}={sp.phases[key] * 1e3:.2f}ms")
    return "  ".join(parts)


def render_tree(root: Span, *, indent: str = "") -> str:
    """ASCII tree of a span hierarchy with per-span wall time."""
    lines: list[str] = []

    def emit(sp: Span, prefix: str, child_prefix: str) -> None:
        label = f"{prefix}{sp.name}"
        line = f"{label:<40} {sp.duration * 1e3:9.3f} ms"
        attrs = _format_attrs(sp)
        if attrs:
            line += f"  [{attrs}]"
        lines.append(line)
        for i, child in enumerate(sp.children):
            last = i == len(sp.children) - 1
            emit(child,
                 child_prefix + ("└─ " if last else "├─ "),
                 child_prefix + ("   " if last else "│  "))

    emit(root, indent, indent)
    return "\n".join(lines)
