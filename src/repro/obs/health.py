"""Numerical-health telemetry: gauges that predict breakdown.

The §8.2 stability analysis (and Bojanczyk–Brent–de Hoog's error
analysis of Bareiss-type factorizations) identifies the per-step
quantities that *predict* trouble long before a solve goes wrong:

* the **hyperbolic rotation margin** — how far each pivot column's
  hyperbolic norm ``|uᵀWu|`` sits above the breakdown threshold.  A
  margin ratio drifting toward 1 means the next factorization of a
  nearby matrix dies with a :class:`~repro.errors.BreakdownError`;
* the **growth factor** — the 2-norm of the hyperbolic transformation
  applied at each block step (``≈ 2/√δ`` right after a pivot
  perturbation), the quantity the §8.2 bound budgets at ``O(1/δ)``;
* **condest admission decisions** — whether reduced-precision
  factorization + fp64 refinement was admitted (``cond·ε ≤ 0.05``) or
  rejected back to fp64;
* **refinement convergence** — the per-sweep residual contraction γ
  (eq. 41); a contraction near 1 means refinement is stalling.

The solver core computes all of these already and used to throw them
away.  The hooks here persist them as gauges/counters in the default
metrics registry — **only when observability is enabled**: every hook
is guarded by :func:`repro.obs.spans.enabled` at the call site and
returns immediately otherwise, so the disabled cost is one module-global
boolean check (covered by the < 2 % CI overhead gate).

:func:`health_summary` rolls the gauges up into a breakdown
early-warning report; the CLI prints it under ``--profile`` and
``repro trace report`` consumes the same snapshot shape.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.spans import enabled

__all__ = [
    "record_rotation_margin",
    "record_growth_factor",
    "record_pivot_spread",
    "record_indefinite_events",
    "record_admission",
    "record_refinement",
    "health_summary",
    "render_health",
]

#: Early-warning threshold: a minimum margin ratio below this many
#: multiples of the breakdown tolerance flags the run.
MARGIN_WARN_RATIO = 10.0

#: Early-warning threshold on the refinement contraction factor γ
#: (eq. 41): above this, convergence is too slow to trust.
CONTRACTION_WARN = 0.5


def _registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    return registry if registry is not None else default_registry()


def _track_min(gauge, value: float) -> None:
    current = gauge.value()
    if current == 0.0 or value < current:
        gauge.set(value)


def _track_max(gauge, value: float) -> None:
    if value > gauge.value():
        gauge.set(value)


# ----------------------------------------------------------------------
# Hooks (call sites guard with ``obs.enabled()``)
# ----------------------------------------------------------------------
def record_rotation_margin(margin: float, tol: float, *,
                           registry: MetricsRegistry | None = None) -> None:
    """One pivot's hyperbolic margin ``|uᵀWu|/‖u‖²`` against its
    breakdown tolerance ``tol``.

    Tracks the run's minimum margin, the minimum margin *ratio*
    (margin / tol — the dimensionless distance to breakdown), and a
    reflector counter.
    """
    if not enabled():
        return
    reg = _registry(registry)
    _track_min(reg.gauge(
        "repro_health_rotation_margin_min",
        "Smallest hyperbolic pivot margin |uᵀWu|/‖u‖² seen"), margin)
    if tol > 0.0 and math.isfinite(margin):
        _track_min(reg.gauge(
            "repro_health_rotation_margin_ratio_min",
            "Smallest pivot margin as a multiple of its breakdown "
            "tolerance (≤ 1 would raise BreakdownError)"), margin / tol)
    reg.counter(
        "repro_health_reflectors_total",
        "Hyperbolic reflectors built").inc(1)


def record_growth_factor(step: int, norm: float, *,
                         registry: MetricsRegistry | None = None) -> None:
    """The §8.2 growth proxy ``‖U‖₂`` of one block step's transformation."""
    if not enabled():
        return
    reg = _registry(registry)
    _track_max(reg.gauge(
        "repro_health_growth_factor_max",
        "Largest per-step hyperbolic transformation 2-norm (the §8.2 "
        "growth factor; ≈ 2/√δ right after a perturbation)"), norm)
    reg.gauge(
        "repro_health_growth_factor_last",
        "Transformation 2-norm of the most recent block step").set(norm)
    reg.counter(
        "repro_health_growth_steps_total",
        "Block elimination steps with a recorded growth factor").inc(1)


def record_pivot_spread(diag_min: float, diag_max: float, *,
                        registry: MetricsRegistry | None = None) -> None:
    """Spread of the triangular factor's diagonal (SPD pivot decay)."""
    if not enabled():
        return
    reg = _registry(registry)
    reg.gauge(
        "repro_health_pivot_min",
        "Smallest diagonal entry of the most recent triangular factor"
    ).set(diag_min)
    if diag_max > 0.0:
        _track_min(reg.gauge(
            "repro_health_pivot_ratio_min",
            "Smallest min/max diagonal ratio of a triangular factor "
            "(squared, this bounds cond(T) from below)"),
            diag_min / diag_max)


def record_indefinite_events(perturbations: int, interchanges: int, *,
                             registry: MetricsRegistry | None = None
                             ) -> None:
    """Singular-minor perturbations and row interchanges of one
    indefinite factorization."""
    if not enabled():
        return
    reg = _registry(registry)
    if perturbations:
        reg.counter(
            "repro_health_perturbations_total",
            "Pivot perturbations applied across singular principal "
            "minors (each makes the factorization one of T + δT)"
        ).inc(perturbations)
    if interchanges:
        reg.counter(
            "repro_health_interchanges_total",
            "Row interchanges keeping indefinite pivots on the "
            "diagonal").inc(interchanges)


def record_admission(precision: str, cond: float, admitted: bool, *,
                     registry: MetricsRegistry | None = None) -> None:
    """One condest admission decision for a reduced-precision plan."""
    if not enabled():
        return
    reg = _registry(registry)
    reg.counter(
        "repro_health_admission_total",
        "Reduced-precision admission decisions (cond·ε gate)"
    ).inc(1, precision=precision, admitted=str(admitted).lower())
    if math.isfinite(cond):
        reg.gauge(
            "repro_health_cond_estimate",
            "Condition estimate behind the most recent admission "
            "decision").set(cond)


def record_refinement(residual_norms, converged: bool, *,
                      registry: MetricsRegistry | None = None) -> None:
    """Convergence curve of one refinement run.

    Stores the geometric-mean per-sweep residual contraction (the
    measured γ of eq. 41) and counts non-converged runs.
    """
    if not enabled():
        return
    reg = _registry(registry)
    norms = [float(r) for r in residual_norms]
    if len(norms) >= 2 and norms[0] > 0.0 and norms[-1] > 0.0:
        sweeps = len(norms) - 1
        contraction = (norms[-1] / norms[0]) ** (1.0 / sweeps)
        reg.gauge(
            "repro_health_refinement_contraction",
            "Geometric-mean per-sweep residual contraction γ of the "
            "most recent refinement (eq. 41; near 1 ⇒ stalling)"
        ).set(min(contraction, 1.0e9))
        _track_max(reg.gauge(
            "repro_health_refinement_contraction_max",
            "Worst per-sweep refinement contraction seen"), contraction)
    reg.counter(
        "repro_health_refinements_total",
        "Refinement runs observed").inc(
            1, converged=str(bool(converged)).lower())


# ----------------------------------------------------------------------
# Summary / early warning
# ----------------------------------------------------------------------
def _sum_labeled(snapshot: dict, name: str,
                 label: str | None = None) -> float:
    """Sum every sample of ``name`` (optionally matching one label)."""
    total = 0.0
    for key, value in snapshot.items():
        if key == name or key.startswith(name + "{"):
            if label is None or label in key:
                total += value
    return total


def health_summary(snapshot: dict | None = None, *,
                   registry: MetricsRegistry | None = None) -> dict:
    """Roll the health gauges up into an early-warning summary.

    ``snapshot`` is a flat metrics dict (as produced by
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` — also what a
    :class:`~repro.obs.Profile` carries); when omitted, the default
    registry is snapshotted.  Returns a dict with the raw quantities, a
    boolean ``observed`` (any health metric present at all), and a
    ``warnings`` list of human-readable early-warning strings.
    """
    if snapshot is None:
        snapshot = _registry(registry).snapshot()
    margin_ratio = snapshot.get("repro_health_rotation_margin_ratio_min")
    growth = snapshot.get("repro_health_growth_factor_max")
    contraction = snapshot.get("repro_health_refinement_contraction_max")
    perturbations = _sum_labeled(snapshot,
                                 "repro_health_perturbations_total")
    interchanges = _sum_labeled(snapshot,
                                "repro_health_interchanges_total")
    rejected = _sum_labeled(snapshot, "repro_health_admission_total",
                            label='admitted="false"')
    admitted = _sum_labeled(snapshot, "repro_health_admission_total",
                            label='admitted="true"')
    nonconverged = _sum_labeled(snapshot, "repro_health_refinements_total",
                                label='converged="false"')
    reflectors = _sum_labeled(snapshot, "repro_health_reflectors_total")

    warnings: list[str] = []
    if margin_ratio is not None and margin_ratio <= MARGIN_WARN_RATIO:
        warnings.append(
            f"pivot hyperbolic margin within {margin_ratio:.1f}× of the "
            f"breakdown tolerance (≤ {MARGIN_WARN_RATIO:.0f}× warns): a "
            "nearby matrix would break down — consider "
            "indefinite+refine or a larger perturbation δ")
    if growth is not None and growth > 1.0:
        # The §8.2 budget: perturbed steps reach ≈ 2/√δ ≈ 4e2 at fp64's
        # δ = ∛ε.  Warn once growth exceeds half that budget.
        budget = 2.0 / math.sqrt(float(np.finfo(np.float64).eps) ** (1 / 3))
        if growth >= 0.5 * budget:
            warnings.append(
                f"transformation growth {growth:.3g} is within 2× of "
                f"the §8.2 perturbation budget 2/√δ ≈ {budget:.3g}: "
                "expect ≥ 2 refinement sweeps and reduced backward "
                "stability")
    if perturbations:
        warnings.append(
            f"{int(perturbations)} pivot perturbation(s): the "
            "factorization is of a nearby matrix T + δT — solve through "
            "iterative refinement")
    if rejected:
        warnings.append(
            f"{int(rejected)} reduced-precision admission rejection(s): "
            "cond·ε exceeded the 0.05 gate and the factorization was "
            "redone at fp64")
    if contraction is not None and contraction >= CONTRACTION_WARN:
        warnings.append(
            f"refinement contraction γ ≈ {contraction:.2f} "
            f"(≥ {CONTRACTION_WARN} warns): convergence is marginal — "
            "the condition estimate may understate cond(T)")
    if nonconverged:
        warnings.append(
            f"{int(nonconverged)} refinement run(s) did not converge")

    observed = any(k.startswith("repro_health_") for k in snapshot)
    return {
        "observed": observed,
        "rotation_margin_min": snapshot.get(
            "repro_health_rotation_margin_min"),
        "rotation_margin_ratio_min": margin_ratio,
        "growth_factor_max": growth,
        "pivot_ratio_min": snapshot.get("repro_health_pivot_ratio_min"),
        "reflectors": int(reflectors),
        "perturbations": int(perturbations),
        "interchanges": int(interchanges),
        "admissions": int(admitted),
        "admission_rejections": int(rejected),
        "refinement_contraction": contraction,
        "refinements_nonconverged": int(nonconverged),
        "cond_estimate": snapshot.get("repro_health_cond_estimate"),
        "warnings": warnings,
    }


def render_health(summary: dict) -> str:
    """Human-readable numerical-health block (CLI ``--profile``)."""
    lines = ["numerical health:"]
    fmt = [
        ("rotation margin (min)", "rotation_margin_min", "{:.3e}"),
        ("margin / tolerance (min)", "rotation_margin_ratio_min",
         "{:.3g}×"),
        ("growth factor (max)", "growth_factor_max", "{:.3g}"),
        ("pivot min/max ratio", "pivot_ratio_min", "{:.3e}"),
        ("refinement contraction γ", "refinement_contraction", "{:.3g}"),
        ("condition estimate", "cond_estimate", "{:.3e}"),
    ]
    for label, key, spec in fmt:
        value = summary.get(key)
        if value is not None:
            lines.append(f"  {label:<26} {spec.format(value)}")
    counts = [
        ("reflectors", summary.get("reflectors", 0)),
        ("perturbations", summary.get("perturbations", 0)),
        ("interchanges", summary.get("interchanges", 0)),
        ("admission rejections",
         summary.get("admission_rejections", 0)),
    ]
    counted = "  ".join(f"{k}={v}" for k, v in counts if v)
    if counted:
        lines.append(f"  events: {counted}")
    if summary["warnings"]:
        lines.append("  early warnings:")
        for w in summary["warnings"]:
            lines.append(f"    ! {w}")
    else:
        lines.append("  no early warnings")
    return "\n".join(lines)
