"""Chrome trace-event export: render distributed schedules visually.

Converts unified-schema trace records (:mod:`repro.obs.schema`) into
the Chrome trace-event JSON format, so ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev) render the paper's Figure-5-style
schedules — one swim lane per PE, nested bars for span trees — with no
custom viewer.

Mapping:

* every record becomes one complete ("X") event with microsecond
  ``ts``/``dur`` relative to the trace's earliest start;
* the record ``source`` becomes the process (``pid``) and the ``rank``
  the thread (``tid``) — so an mp-backend trace shows one lane per PE
  and an engine profile a single lane;
* metadata ("M") events name the processes and lanes;
* record ``attrs`` pass through as event ``args`` (NaN/Inf-sanitized),
  which Perfetto shows in the selection panel.

Entry points: :func:`chrome_trace` (dict) and
:func:`write_chrome_trace` (file), surfaced as the CLI
``repro trace timeline``.
"""

from __future__ import annotations

import json

from repro.obs.export import _json_safe, read_jsonl

__all__ = ["chrome_trace", "write_chrome_trace"]

#: Stable pid assignment per record source (engine lanes first).
_SOURCE_PIDS = {"engine": 1, "multiprocess": 2, "simulator": 3}


def _pid(source: str) -> int:
    return _SOURCE_PIDS.get(source, 9)


def chrome_trace(records) -> dict:
    """Build a Chrome trace-event document from schema records.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — the
    JSON-object form of the format, which both ``chrome://tracing`` and
    Perfetto accept.  Timestamps are microseconds from the earliest
    record start (the format's native unit).
    """
    records = list(records)
    t0 = min((r["start"] for r in records), default=0.0)
    events: list[dict] = []
    seen_procs: set[int] = set()
    seen_lanes: set[tuple[int, int]] = set()
    for rec in records:
        pid = _pid(rec["source"])
        tid = rec["rank"] if rec["rank"] is not None else 0
        if pid not in seen_procs:
            seen_procs.add(pid)
            events.append({
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name",
                "args": {"name": rec["source"]},
            })
        if (pid, tid) not in seen_lanes:
            seen_lanes.add((pid, tid))
            lane = (f"rank {tid}" if rec["rank"] is not None
                    else "main")
            events.append({
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_name",
                "args": {"name": lane},
            })
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "name": rec["name"],
            "cat": rec["kind"],
            "ts": (rec["start"] - t0) * 1e6,
            "dur": max(0.0, rec["end"] - rec["start"]) * 1e6,
            "args": _json_safe(rec.get("attrs", {})),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records, path: str) -> str:
    """Write :func:`chrome_trace` output as JSON; returns ``path``.

    Accepts in-memory records or a JSONL trace path.
    """
    if isinstance(records, str):
        records = read_jsonl(records)
    doc = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, allow_nan=False)
    return path
