"""Trace analysis: critical path, rank utilization, flop efficiency.

The paper's whole evaluation is observational — per-PE phase breakdowns
(Figure 5's distributions), achieved vs modeled flop rates (Figures
6–10) — and this module computes the same three reports from any JSONL
trace in the unified schema (:mod:`repro.obs.schema`), whether the
records came from the in-process span tracer, the simulated machine, or
the real multiprocess backend:

* **critical path** — the longest chain of nested spans (tree traces)
  or the busiest rank's kind breakdown (flat per-PE traces): what a
  faster implementation must shorten;
* **per-rank utilization** — busy (:data:`~repro.obs.schema.COMPUTE_KINDS`),
  communication (:data:`~repro.obs.schema.COMM_KINDS`) and idle seconds
  per rank against the makespan, plus the max/mean busy **imbalance**
  factor (1.0 = perfectly balanced);
* **flop efficiency** — achieved MFLOP/s from the flop attributes the
  engine stamps on spans (``model_flops``/``counted_flops``) or from
  per-execution summary records, and the counted/modeled ratio — the
  roofline-style achieved-vs-modeled comparison.

Entry points: :func:`analyze_records` / :func:`analyze_file` →
:class:`TraceReport` (``render()`` for the CLI, ``to_dict()`` for
machine consumption).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.export import read_jsonl
from repro.obs.schema import COMM_KINDS, COMPUTE_KINDS, KIND_EXECUTION

__all__ = [
    "CriticalPathEntry",
    "RankUtilization",
    "FlopReport",
    "TraceReport",
    "analyze_records",
    "analyze_file",
]


@dataclass(frozen=True)
class CriticalPathEntry:
    """One hop of the critical path."""

    name: str
    kind: str
    duration: float          #: seconds spent in this hop
    self_time: float         #: seconds not covered by the next hop
    rank: int | None = None
    depth: int = 0           #: nesting level (flat breakdowns stay at 1)


@dataclass(frozen=True)
class RankUtilization:
    """One rank's (or the single serial lane's) time breakdown."""

    rank: int | None
    busy: float              #: seconds in COMPUTE_KINDS
    comm: float              #: seconds in COMM_KINDS
    idle: float              #: makespan − busy − comm (≥ 0)
    utilization: float       #: busy / makespan


@dataclass(frozen=True)
class FlopReport:
    """Achieved-vs-modeled flop summary (paper Figures 6–10 shape)."""

    model_flops: float | None
    counted_flops: float | None
    seconds: float
    achieved_mflops: float | None   #: counted (or model) flops / time
    counted_over_model: float | None

    @property
    def available(self) -> bool:
        return self.model_flops is not None or \
            self.counted_flops is not None


@dataclass(frozen=True)
class TraceReport:
    """Everything :func:`analyze_records` extracts from one trace."""

    makespan: float
    num_records: int
    sources: tuple[str, ...]
    critical_path: tuple[CriticalPathEntry, ...]
    ranks: tuple[RankUtilization, ...]
    imbalance: float | None          #: max busy / mean busy (None: serial)
    flops: FlopReport

    def to_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "num_records": self.num_records,
            "sources": list(self.sources),
            "critical_path": [
                {"name": e.name, "kind": e.kind, "duration": e.duration,
                 "self_time": e.self_time, "rank": e.rank,
                 "depth": e.depth}
                for e in self.critical_path],
            "ranks": [
                {"rank": r.rank, "busy": r.busy, "comm": r.comm,
                 "idle": r.idle, "utilization": r.utilization}
                for r in self.ranks],
            "imbalance": self.imbalance,
            "flops": {
                "model_flops": self.flops.model_flops,
                "counted_flops": self.flops.counted_flops,
                "seconds": self.flops.seconds,
                "achieved_mflops": self.flops.achieved_mflops,
                "counted_over_model": self.flops.counted_over_model,
            },
        }

    def render(self) -> str:
        """Human-readable report (the CLI ``trace report`` output)."""
        lines = [
            f"trace report ({self.num_records} records, "
            f"sources: {', '.join(self.sources) or 'none'})",
            f"  makespan: {_fmt_s(self.makespan)}",
            "critical path:",
        ]
        total = self.critical_path[0].duration if self.critical_path \
            else 0.0
        for e in self.critical_path:
            where = f" [rank {e.rank}]" if e.rank is not None else ""
            share = f" ({100.0 * e.duration / total:.0f}%)" if total else ""
            lines.append(f"  {'  ' * e.depth}{e.name}{where}: "
                         f"{_fmt_s(e.duration)}{share}  "
                         f"self {_fmt_s(e.self_time)}")
        if not self.critical_path:
            lines.append("  (empty trace)")
        lines.append("per-rank utilization:")
        for r in self.ranks:
            lane = "serial" if r.rank is None else f"rank {r.rank}"
            lines.append(
                f"  {lane:<8} busy {_fmt_s(r.busy)}  comm "
                f"{_fmt_s(r.comm)}  idle {_fmt_s(r.idle)}  "
                f"util {100.0 * r.utilization:5.1f}%")
        if self.imbalance is not None:
            lines.append(f"  imbalance (max/mean busy): "
                         f"{self.imbalance:.2f}x")
        lines.append("flop efficiency:")
        f = self.flops
        if f.available:
            if f.model_flops is not None:
                lines.append(f"  modeled flops:  {f.model_flops:,.0f}")
            if f.counted_flops is not None:
                lines.append(f"  counted flops:  {f.counted_flops:,.0f}")
            if f.counted_over_model is not None:
                lines.append(f"  counted / modeled: "
                             f"{f.counted_over_model:.3f}")
            if f.achieved_mflops is not None:
                lines.append(f"  achieved rate:  "
                             f"{f.achieved_mflops:,.1f} MFLOP/s "
                             f"over {_fmt_s(f.seconds)}")
        else:
            lines.append("  n/a (no flop attributes in this trace — "
                         "simulated event traces carry timing only)")
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _duration(rec: dict) -> float:
    return max(0.0, rec["end"] - rec["start"])


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def _critical_path(records: list[dict]) -> list[CriticalPathEntry]:
    """Longest root-to-leaf chain by duration.

    Span trees (engine / mp-backend profiles) descend from the
    longest-duration root into the longest-duration child at each
    level.  Flat per-rank traces (the simulator: every record is a
    root) have no tree to descend; instead the rank that owns the
    makespan *is* the critical path, reported as its per-kind
    aggregation — which matches the classical definition for a
    barrier-synchronized SPMD schedule (the slowest PE paces everyone).
    """
    children: dict[int, list[dict]] = {}
    roots: list[dict] = []
    for rec in records:
        if rec["parent"] is None:
            roots.append(rec)
        else:
            children.setdefault(rec["parent"], []).append(rec)
    if not roots:
        return []
    # Per-execution summary records duplicate their span tree's wall
    # time; the path should descend the tree, not end on the summary.
    span_roots = [r for r in roots if r["kind"] != KIND_EXECUTION]
    if span_roots:
        roots = span_roots
    if children:
        path: list[CriticalPathEntry] = []
        node = max(roots, key=_duration)
        depth = 0
        while node is not None:
            kids = children.get(node["id"], [])
            longest = max(kids, key=_duration) if kids else None
            dur = _duration(node)
            self_time = dur - (_duration(longest) if longest is not None
                               else 0.0)
            path.append(CriticalPathEntry(
                name=node["name"], kind=node["kind"], duration=dur,
                self_time=max(0.0, self_time), rank=node["rank"],
                depth=depth))
            node = longest
            depth += 1
        return path
    # Flat trace: aggregate the busiest rank's events by kind.
    by_rank: dict[int | None, list[dict]] = {}
    for rec in roots:
        by_rank.setdefault(rec["rank"], []).append(rec)
    crit_rank = max(by_rank,
                    key=lambda rk: max(r["end"] for r in by_rank[rk]))
    events = by_rank[crit_rank]
    span = (max(r["end"] for r in events)
            - min(r["start"] for r in events))
    path = [CriticalPathEntry(name=f"rank {crit_rank}", kind="rank",
                              duration=span, self_time=0.0,
                              rank=crit_rank, depth=0)]
    by_kind: dict[str, float] = {}
    for rec in events:
        by_kind[rec["kind"]] = by_kind.get(rec["kind"], 0.0) \
            + _duration(rec)
    for kind, dur in sorted(by_kind.items(), key=lambda kv: -kv[1]):
        path.append(CriticalPathEntry(name=kind, kind=kind,
                                      duration=dur, self_time=dur,
                                      rank=crit_rank, depth=1))
    return path


# ----------------------------------------------------------------------
# Utilization / imbalance
# ----------------------------------------------------------------------
def _leaf_intervals(records: list[dict]) -> list[dict]:
    """Records whose time is not double counted by a descendant.

    For span trees, a parent's interval includes its children's; only
    leaves (and the synthetic phase records, which are always leaves)
    carry chargeable time.  Flat traces are all leaves already.
    """
    has_child = {rec["parent"] for rec in records
                 if rec["parent"] is not None}
    return [rec for rec in records if rec["id"] not in has_child]


def _utilization(records: list[dict], makespan: float
                 ) -> tuple[list[RankUtilization], float | None]:
    leaves = _leaf_intervals(records)
    per_rank: dict[int | None, dict[str, float]] = {}
    for rec in leaves:
        acc = per_rank.setdefault(rec["rank"], {"busy": 0.0, "comm": 0.0})
        if rec["kind"] in COMPUTE_KINDS:
            acc["busy"] += _duration(rec)
        elif rec["kind"] in COMM_KINDS:
            acc["comm"] += _duration(rec)
    # Unranked leaves fold into the serial lane only when no ranks
    # exist: in a mixed trace (engine spans + per-PE records) the
    # engine-side bookkeeping is not a lane of the parallel schedule.
    ranked = {rk for rk in per_rank if rk is not None}
    if ranked:
        per_rank = {rk: acc for rk, acc in per_rank.items()
                    if rk is not None}
    utils: list[RankUtilization] = []
    for rank in sorted(per_rank, key=lambda rk: (-1 if rk is None else rk)):
        acc = per_rank[rank]
        idle = max(0.0, makespan - acc["busy"] - acc["comm"])
        utils.append(RankUtilization(
            rank=rank, busy=acc["busy"], comm=acc["comm"], idle=idle,
            utilization=(acc["busy"] / makespan) if makespan > 0 else 0.0))
    imbalance: float | None = None
    if len(utils) > 1:
        busies = [u.busy for u in utils]
        mean = sum(busies) / len(busies)
        if mean > 0:
            imbalance = max(busies) / mean
    return utils, imbalance


# ----------------------------------------------------------------------
# Flop efficiency
# ----------------------------------------------------------------------
def _flop_report(records: list[dict], makespan: float) -> FlopReport:
    """Aggregate flop attributes without double counting.

    Per-execution summary records (``kind == "execution"``) already
    total their span tree's flops, so when any are present they are
    used exclusively.  Otherwise span attributes are summed, skipping
    spans whose ancestors already carried the same attribute (the
    engine stamps ``model_flops`` once per top-level operation).
    """
    execs = [r for r in records if r["kind"] == KIND_EXECUTION]
    model = counted = 0.0
    seen_model = seen_counted = False
    seconds = makespan
    if execs:
        sec = 0.0
        for rec in execs:
            attrs = rec.get("attrs", {})
            if isinstance(attrs.get("model_flops"), (int, float)):
                model += attrs["model_flops"]
                seen_model = True
            if isinstance(attrs.get("counted_flops"), (int, float)):
                counted += attrs["counted_flops"]
                seen_counted = True
            sec += _duration(rec)
        seconds = sec or makespan
    else:
        by_id = {rec["id"]: rec for rec in records}

        def ancestor_has(rec: dict, key: str) -> bool:
            parent = rec["parent"]
            while parent is not None:
                anc = by_id.get(parent)
                if anc is None:
                    return False
                if isinstance(anc.get("attrs", {}).get(key),
                              (int, float)):
                    return True
                parent = anc["parent"]
            return False

        for rec in records:
            attrs = rec.get("attrs", {})
            mf = attrs.get("model_flops")
            if isinstance(mf, (int, float)) and \
                    not ancestor_has(rec, "model_flops"):
                model += mf
                seen_model = True
            cf = attrs.get("counted_flops")
            if isinstance(cf, (int, float)) and \
                    not ancestor_has(rec, "counted_flops"):
                counted += cf
                seen_counted = True
    best = counted if seen_counted else (model if seen_model else None)
    achieved = (best / seconds / 1e6
                if best is not None and seconds > 0 else None)
    ratio = (counted / model
             if seen_model and seen_counted and model > 0 else None)
    return FlopReport(
        model_flops=model if seen_model else None,
        counted_flops=counted if seen_counted else None,
        seconds=seconds,
        achieved_mflops=achieved,
        counted_over_model=ratio)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def analyze_records(records: list[dict]) -> TraceReport:
    """Compute the full :class:`TraceReport` for in-memory records."""
    records = list(records)
    if records:
        start = min(r["start"] for r in records)
        end = max(r["end"] for r in records)
        makespan = max(0.0, end - start)
    else:
        makespan = 0.0
    ranks, imbalance = _utilization(records, makespan)
    return TraceReport(
        makespan=makespan,
        num_records=len(records),
        sources=tuple(sorted({r["source"] for r in records})),
        critical_path=tuple(_critical_path(records)),
        ranks=tuple(ranks),
        imbalance=imbalance,
        flops=_flop_report(records, makespan))


def analyze_file(path: str) -> TraceReport:
    """Analyze a JSONL trace file (any source)."""
    return analyze_records(read_jsonl(path))
