"""Thread-safe metric registry: counters and gauges with labels.

A deliberately small subset of the Prometheus data model — enough for
the solver engine's production surface:

* :class:`Counter` — monotonically increasing totals (solves run,
  fallbacks taken, model flops executed);
* :class:`Gauge` — last-written values (cache occupancy bytes, the
  residual norm of the most recent refinement iteration).

Both support optional labels (``counter.inc(1, algorithm="spd-schur")``)
and publish through :func:`MetricsRegistry.render_prometheus`, the
text exposition format a scrape endpoint would serve, or
:func:`MetricsRegistry.snapshot` for programmatic access.

Like the span tracer, metric *updates* are expected to be guarded by
``obs.enabled()`` at the instrumentation site, so the disabled mode
costs one boolean check; the registry itself is always importable and
thread-safe.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "render_prometheus",
]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared machinery: one name, samples keyed by label set."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._samples: dict[tuple, float] = {}

    def value(self, **labels) -> float:
        """Current value for the given label set (0.0 when unseen)."""
        with self._lock:
            return self._samples.get(_label_key(labels), 0.0)

    def samples(self) -> dict[tuple, float]:
        """Snapshot of ``{label tuple: value}``."""
        with self._lock:
            return dict(self._samples)


class Counter(_Metric):
    """Monotonically increasing metric (``*_total`` by convention)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be ≥ 0) to the labeled sample."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount


class Gauge(_Metric):
    """Set-to-current-value metric (may go up and down)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Overwrite the labeled sample with ``value``."""
        with self._lock:
            self._samples[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Adjust the labeled sample by ``amount`` (negative allowed)."""
        key = _label_key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)


class MetricsRegistry:
    """Get-or-create store of named metrics.

    Metric names follow the Prometheus convention used throughout the
    package: ``repro_<subsystem>_<quantity>[_total]`` — e.g.
    ``repro_cache_bytes``, ``repro_engine_executions_total``.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get_or_create(Gauge, name, help)

    def metrics(self) -> dict[str, _Metric]:
        """Snapshot of the registered metric objects."""
        with self._lock:
            return dict(self._metrics)

    def clear(self) -> None:
        """Drop every registered metric (tests / fresh runs)."""
        with self._lock:
            self._metrics.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flat ``{exposition name: value}`` dict of every sample.

        Labeled samples render their label set into the key, matching
        the exposition format: ``name{k="v"}``.
        """
        out: dict[str, float] = {}
        for name, metric in sorted(self.metrics().items()):
            for key, value in sorted(metric.samples().items()):
                out[_sample_name(name, key)] = value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric and sample."""
        lines: list[str] = []
        for name, metric in sorted(self.metrics().items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            samples = metric.samples()
            if not samples:
                lines.append(f"{name} 0")
                continue
            for key, value in sorted(samples.items()):
                lines.append(f"{_sample_name(name, key)} {_format(value)}")
        return "\n".join(lines) + "\n"


def _sample_name(name: str, label_key: tuple) -> str:
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


def _format(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the built-in instrumentation uses."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Text exposition of ``registry`` (default: the process-wide one)."""
    return (registry or default_registry()).render_prometheus()
