"""JSON-lines export of spans and simulated traces (one shared schema).

Flattens either a span tree (:func:`span_records`) or a simulated
machine trace (:func:`trace_records`) into the record shape of
:mod:`repro.obs.schema` and reads/writes them as JSONL — one record per
line, the format the benchmark harness persists and CI uploads as an
artifact.
"""

from __future__ import annotations

import json
import math
import os

from repro.obs.schema import (
    SCHEMA_VERSION,
    SOURCE_ENGINE,
    SOURCE_MULTIPROCESS,
    SOURCE_SIMULATOR,
    make_record,
)

__all__ = [
    "span_records",
    "trace_records",
    "merge_rank_traces",
    "write_jsonl",
    "read_jsonl",
]


def _finite(value: float):
    """JSON has no NaN/Infinity literals: map them to null / strings.

    ``json.dumps`` would otherwise emit the JavaScript-only tokens
    ``NaN``/``Infinity``, which strict parsers (and our own
    :func:`read_jsonl`) reject — a NaN residual gauge must not poison a
    whole trace file.
    """
    if math.isnan(value):
        return None
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def _json_safe(value):
    """Coerce numpy scalars / odd attribute values to JSON-ready ones."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return _finite(value)
    if isinstance(value, (str, int)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _json_safe(item())
        except (TypeError, ValueError):
            pass
    return str(value)


def span_records(root, *, source: str = SOURCE_ENGINE) -> list[dict]:
    """Flatten one span tree into schema records (depth-first ids).

    Each span contributes one record; its accumulated phase times
    (``Span.phases``) become synthetic child records of kind
    ``<phase name>`` so phase-level roll-ups need no special casing.

    A ``rank`` span attribute (set by per-PE worker spans of the real
    multiprocess backend) is lifted into the record's top-level ``rank``
    field and inherited by descendants, so ranked spans land in the same
    per-PE shape the simulated machine's trace exporter emits.  Ranked
    records are stamped ``source="multiprocess"`` even inside an engine
    profile — the field identifies the producer, and a worker span
    adopted into the engine's tree was still produced by a worker.
    """
    records: list[dict] = []

    def emit(sp, parent_id: int | None, rank: int | None) -> None:
        rec_id = len(records)
        attrs = {k: _json_safe(v) for k, v in sp.attributes.items()}
        lifted = attrs.pop("rank", None)
        if isinstance(lifted, int) and not isinstance(lifted, bool):
            rank = lifted
        rec_source = SOURCE_MULTIPROCESS if rank is not None else source
        records.append(make_record(
            source=rec_source, rec_id=rec_id, parent=parent_id,
            name=sp.name, kind="span", rank=rank,
            start=sp.start, end=sp.end if sp.end is not None else sp.start,
            attrs=attrs))
        cursor = sp.start
        for phase, seconds in sorted(sp.phases.items()):
            records.append(make_record(
                source=rec_source, rec_id=len(records), parent=rec_id,
                name=phase, kind=phase, rank=rank,
                start=cursor, end=cursor + seconds,
                attrs={"aggregated": True}))
            cursor += seconds
        for child in sp.children:
            emit(child, rec_id, rank)

    emit(root, None, None)
    return records


def trace_records(trace, *, source: str = SOURCE_SIMULATOR) -> list[dict]:
    """Flatten a simulated :class:`~repro.machine.trace.Trace`.

    Every event is a root record carrying its rank; ``kind`` is the
    event kind, so utilization roll-ups work directly off
    :data:`repro.obs.schema.COMPUTE_KINDS`.
    """
    return [
        make_record(source=source, rec_id=i, parent=None,
                    name=event.kind, kind=event.kind, rank=event.rank,
                    start=event.start, end=event.end)
        for i, event in enumerate(trace.events)
    ]


def merge_rank_traces(sources, out_path: str | None = None) -> list[dict]:
    """Merge per-rank trace streams into one time-ordered record list.

    The real multiprocess backend produces one record stream per PE;
    leaving them as one file per rank makes every downstream consumer
    (the trace report, the Chrome exporter) re-implement the merge.
    ``sources`` is an iterable of JSONL paths *or* of record lists;
    records are interleaved by start time (ties: longer interval —
    i.e. the enclosing span — first), re-numbered with globally unique
    ids, and parent links are remapped so each stream's span trees stay
    intact.  When ``out_path`` is given the merged stream is also
    written as JSONL.
    """
    tagged: list[tuple[int, dict]] = []
    for tag, src in enumerate(sources):
        records = (read_jsonl(os.fspath(src))
                   if isinstance(src, (str, os.PathLike))
                   else list(src))
        tagged.extend((tag, rec) for rec in records)
    order = sorted(range(len(tagged)),
                   key=lambda i: (tagged[i][1]["start"],
                                  -tagged[i][1]["end"]))
    id_map = {(tagged[i][0], tagged[i][1]["id"]): new_id
              for new_id, i in enumerate(order)}
    merged: list[dict] = []
    for new_id, i in enumerate(order):
        tag, rec = tagged[i]
        rec = dict(rec)
        rec["id"] = new_id
        if rec["parent"] is not None:
            rec["parent"] = id_map[(tag, rec["parent"])]
        merged.append(rec)
    if out_path is not None:
        write_jsonl(merged, out_path)
    return merged


def write_jsonl(records, path: str) -> str:
    """Write records as JSON lines; returns ``path``.

    Every record is passed through the same NaN/Inf-safe coercion the
    span exporter applies to attributes, and ``allow_nan=False`` makes
    any remaining non-finite float a hard error rather than an invalid
    file.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(_json_safe(record), sort_keys=True,
                                allow_nan=False) + "\n")
    return path


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL trace back (skips blank lines, checks the version)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("v") != SCHEMA_VERSION:
                raise ValueError(
                    f"unsupported trace schema version {record.get('v')!r} "
                    f"in {path} (expected {SCHEMA_VERSION})")
            records.append(record)
    return records
