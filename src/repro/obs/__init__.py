"""Observability: spans, metrics, and one trace schema end to end.

The paper's evaluation is quantitative — flop counts (eqs. 25–32),
achieved rates, per-PE phase breakdowns — and this package makes the
reproduction observable the same way in *production* terms:

* :mod:`repro.obs.spans` — hierarchical wall-time spans threaded
  through ``engine.factor`` / ``engine.execute`` down to the Schur
  elimination phases, with flop-model attributes; zero overhead while
  disabled;
* :mod:`repro.obs.metrics` — thread-safe counters/gauges (cache
  occupancy, refinement residuals, execution totals) with a
  Prometheus text exposition (:func:`render_prometheus`);
* :mod:`repro.obs.schema` / :mod:`repro.obs.export` — one flat record
  schema shared by real spans and the simulated machine's
  :class:`~repro.machine.trace.Trace`, serialized as JSONL for the
  benchmark harness and CI artifacts.

Enable per-process with ``REPRO_OBS=1``, programmatically with
:func:`enable`, or per-run with the CLI ``--profile`` flag; execution
results then carry a :class:`Profile` (span tree + metrics snapshot).
"""

from repro.obs.schema import (
    COMM_KINDS,
    COMPUTE_KINDS,
    KIND_EXECUTION,
    SCHEMA_VERSION,
    SOURCE_ENGINE,
    SOURCE_MULTIPROCESS,
    SOURCE_SIMULATOR,
    is_compute_kind,
    make_record,
)
from repro.obs.spans import (
    Profile,
    Span,
    adopt_span,
    current_span,
    disable,
    enable,
    enabled,
    profile_from,
    record_phase,
    render_tree,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    default_registry,
    render_prometheus,
    set_default_registry,
)
from repro.obs.export import (
    read_jsonl,
    span_records,
    trace_records,
    write_jsonl,
)

__all__ = [
    "COMM_KINDS",
    "COMPUTE_KINDS",
    "KIND_EXECUTION",
    "SCHEMA_VERSION",
    "make_record",
    "SOURCE_ENGINE",
    "SOURCE_MULTIPROCESS",
    "SOURCE_SIMULATOR",
    "is_compute_kind",
    "Profile",
    "Span",
    "adopt_span",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "profile_from",
    "record_phase",
    "render_tree",
    "span",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "default_registry",
    "render_prometheus",
    "set_default_registry",
    "read_jsonl",
    "span_records",
    "trace_records",
    "write_jsonl",
]
