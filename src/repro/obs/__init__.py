"""Observability: spans, metrics, and one trace schema end to end.

The paper's evaluation is quantitative — flop counts (eqs. 25–32),
achieved rates, per-PE phase breakdowns — and this package makes the
reproduction observable the same way in *production* terms:

* :mod:`repro.obs.spans` — hierarchical wall-time spans threaded
  through ``engine.factor`` / ``engine.execute`` down to the Schur
  elimination phases, with flop-model attributes; zero overhead while
  disabled;
* :mod:`repro.obs.metrics` — thread-safe counters/gauges (cache
  occupancy, refinement residuals, execution totals) with a
  Prometheus text exposition (:func:`render_prometheus`);
* :mod:`repro.obs.schema` / :mod:`repro.obs.export` — one flat record
  schema shared by real spans and the simulated machine's
  :class:`~repro.machine.trace.Trace`, serialized as JSONL for the
  benchmark harness and CI artifacts;
* :mod:`repro.obs.analyze` — critical-path, per-rank utilization /
  imbalance and achieved-vs-modeled flop reports over any trace;
* :mod:`repro.obs.timeline` — Chrome trace-event export
  (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.health` — numerical-health gauges (rotation margins,
  §8.2 growth factors, admission decisions, refinement convergence)
  with a breakdown early-warning summary.

Enable per-process with ``REPRO_OBS=1``, programmatically with
:func:`enable`, or per-run with the CLI ``--profile`` flag; execution
results then carry a :class:`Profile` (span tree + metrics snapshot).
"""

from repro.obs.schema import (
    COMM_KINDS,
    COMPUTE_KINDS,
    KIND_EXECUTION,
    KIND_REQUEST,
    SCHEMA_VERSION,
    SOURCE_ENGINE,
    SOURCE_MULTIPROCESS,
    SOURCE_SERVE,
    SOURCE_SIMULATOR,
    is_compute_kind,
    make_record,
)
from repro.obs.spans import (
    Profile,
    Span,
    adopt_span,
    current_span,
    disable,
    enable,
    enabled,
    profile_from,
    record_phase,
    render_tree,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    default_registry,
    render_prometheus,
    set_default_registry,
)
from repro.obs.export import (
    merge_rank_traces,
    read_jsonl,
    span_records,
    trace_records,
    write_jsonl,
)
from repro.obs.analyze import TraceReport, analyze_file, analyze_records
from repro.obs.timeline import chrome_trace, write_chrome_trace
from repro.obs.health import health_summary, render_health

__all__ = [
    "COMM_KINDS",
    "COMPUTE_KINDS",
    "KIND_EXECUTION",
    "KIND_REQUEST",
    "SCHEMA_VERSION",
    "make_record",
    "SOURCE_ENGINE",
    "SOURCE_MULTIPROCESS",
    "SOURCE_SERVE",
    "SOURCE_SIMULATOR",
    "is_compute_kind",
    "Profile",
    "Span",
    "adopt_span",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "profile_from",
    "record_phase",
    "render_tree",
    "span",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "default_registry",
    "render_prometheus",
    "set_default_registry",
    "merge_rank_traces",
    "read_jsonl",
    "span_records",
    "trace_records",
    "write_jsonl",
    "TraceReport",
    "analyze_file",
    "analyze_records",
    "chrome_trace",
    "write_chrome_trace",
    "health_summary",
    "render_health",
]
