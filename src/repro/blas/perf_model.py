"""Parametric BLAS performance models.

The paper's implementation-choice analysis (Sections 6.5, 7) needs a map
from *primitive call with shape* to *time*.  We use the classic Hockney
characterization: a primitive streaming vectors of length ``ℓ`` runs at

    ``rate(ℓ) = r_∞ · ℓ / (ℓ + n_½)``

where ``r_∞`` is the asymptotic rate and ``n_½`` the vector length at
half performance.  Each BLAS level gets its own ``(r_∞, n_½)`` pair —
level 3 far above level 1 on the machines of interest — and matrix
primitives are priced by their *constraining* dimension (the smallest
operand dimension), which is exactly the mechanism behind the paper's
observation that short-and-wide level-3 products underperform and that a
larger algorithmic block size ``m_s`` pays superlinearly (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.flops import PrimitiveCall, precision_weight
from repro.errors import ShapeError

__all__ = ["HockneyRate", "BlasPerformanceModel", "PrimitiveCall"]


@dataclass(frozen=True)
class HockneyRate:
    """``rate(ℓ) = r_∞ · ℓ / (ℓ + n_½)`` (flops/second)."""

    r_inf: float
    n_half: float

    def rate(self, length: float) -> float:
        """Achieved flops/second at vector length ``length``."""
        if length <= 0:
            raise ShapeError(f"vector length must be positive, got {length}")
        return self.r_inf * length / (length + self.n_half)

    def time(self, flops: float, length: float) -> float:
        """Seconds for ``flops`` operations at vector length ``length``."""
        return flops / self.rate(length)


@dataclass(frozen=True)
class BlasPerformanceModel:
    """Per-level Hockney rates plus a fixed per-call startup cost.

    Attributes
    ----------
    name : str
        Label used in reports.
    level1, level2, level3 : HockneyRate
        Rates for vector, matrix–vector and matrix–matrix primitives.
    call_latency : float
        Fixed overhead per primitive invocation (seconds) — the term that
        punishes a sea of tiny calls (small ``m``).
    step_overhead : float
        Fixed overhead per *elimination step* outside the primitives
        (driver/loop/dispatch cost).  Zero for pure-library machine
        models; the empirical host characterization measures it — it is
        the dominant small-``m_s`` cost on interpreter-driven hosts and
        the analog of the per-call library overheads the paper observed
        on the Y-MP.
    """

    name: str
    level1: HockneyRate
    level2: HockneyRate
    level3: HockneyRate
    call_latency: float = 0.0
    step_overhead: float = 0.0

    def time(self, call: PrimitiveCall, *,
             precision: str = "fp64") -> float:
        """Seconds to execute one primitive call of the given shape.

        ``precision`` scales the streaming (flop-time) term by
        :data:`repro.core.flops.PRECISION_FLOP_WEIGHT` — fp32 moves
        half the bytes per element, so it streams at twice the rate.
        The per-call latency does not shrink: call setup is
        precision-independent, which is why small-block fp32 runs see
        far less than the 2× headline.
        """
        wgt = precision_weight(precision)
        s = call.shape
        fl = call.flops
        if call.name in ("dot", "axpy", "scal"):
            return self.call_latency + wgt * self.level1.time(fl, s[0])
        if call.name in ("gemv", "ger"):
            # constraining dimension: the shorter operand axis
            length = max(1, min(s[0], s[1]))
            return self.call_latency + wgt * self.level2.time(fl, length)
        if call.name == "gemm":
            length = max(1, min(s))
            return self.call_latency + wgt * self.level3.time(fl, length)
        if call.name == "trsm":
            length = max(1, min(s[0], s[1]))
            return self.call_latency + wgt * self.level3.time(fl, length)
        raise ShapeError(f"unknown primitive {call.name!r}")

    def time_many(self, calls, *, precision: str = "fp64") -> float:
        """Total seconds over an iterable of primitive calls."""
        return sum(self.time(c, precision=precision) for c in calls)

    def achieved_mflops(self, calls, *, precision: str = "fp64") -> float:
        """Aggregate rate (MFLOPS) over a primitive mix."""
        calls = list(calls)
        fl = sum(c.flops for c in calls)
        t = self.time_many(calls, precision=precision)
        return fl / t / 1e6 if t > 0 else float("inf")
