"""BLAS substrate: counted primitives and machine performance models.

The paper's implementation choices all hinge on the relative performance
of level-1/2/3 BLAS primitives on a given machine.  This subpackage
provides:

* :mod:`repro.blas.primitives` — NumPy-backed BLAS-like kernels that tally
  flops into an active :class:`~repro.blas.primitives.FlopCounter`, used to
  validate the paper's closed-form operation counts (eqs. 25–32);
* :mod:`repro.blas.perf_model` — parametric (Hockney ``r_∞ / n_½``)
  performance models mapping a primitive call to virtual seconds;
* :mod:`repro.blas.cray` — Cray Y-MP and Cray T3D parameterizations built
  from the figures published in the paper (Section 7.1.4);
* :mod:`repro.blas.empirical` — an on-host measured characterization, the
  approach the authors themselves used for the Y-MP analysis.
"""

from repro.blas.primitives import (
    FlopCounter,
    counting,
    active_counter,
    charge,
    dot,
    axpy,
    scal,
    gemv,
    ger,
    gemm,
    trsm_lower,
    syrk,
)
from repro.blas.perf_model import (
    HockneyRate,
    BlasPerformanceModel,
    PrimitiveCall,
)
from repro.blas.cray import (
    cray_ymp_model,
    t3d_node_model,
    T3DNetworkParameters,
)
from repro.blas.empirical import EmpiricalBlasModel, measure_host_model

__all__ = [
    "FlopCounter",
    "counting",
    "active_counter",
    "charge",
    "dot",
    "axpy",
    "scal",
    "gemv",
    "ger",
    "gemm",
    "trsm_lower",
    "syrk",
    "HockneyRate",
    "BlasPerformanceModel",
    "PrimitiveCall",
    "cray_ymp_model",
    "t3d_node_model",
    "T3DNetworkParameters",
    "EmpiricalBlasModel",
    "measure_host_model",
]
