"""Cray Y-MP and Cray T3D machine parameterizations.

The Y-MP numbers model a single late-80s vector processor: very fast
level-3 primitives once vectors are long, steep penalties for short ones
(large ``n_½``), and measurable per-call startup — the regime in which
the paper observed that BLAS3 products of a small square matrix with a
short-and-wide matrix underperform badly, making a larger algorithmic
block size ``m_s`` worthwhile (Figure 10).

The T3D node models the DEC Alpha 21064 described in Section 7.1.4
(150 MHz, dual issue, 150 Mflops peak, 8 KB direct-mapped write-through
cache with 4-word lines); the network parameters carry the published
300 MB/s per-link bandwidth and ~1 µs shmem latency.  The small cache and
the 4-word line give a level-2/3 ``n_½`` of a few words — which is the
"application of the transformation is more efficient for block size 4
than 2" effect the paper uses to explain Figure 9.

Absolute calibration of a 1994 machine is not the point (and not
possible); the parameters are chosen to sit at the published peaks with
conventional efficiency ratios, so the *trade-off shapes* the paper
reports are driven by the same mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

from repro.blas.perf_model import BlasPerformanceModel, HockneyRate

__all__ = ["cray_ymp_model", "t3d_node_model", "T3DNetworkParameters"]


def cray_ymp_model() -> BlasPerformanceModel:
    """One Cray Y-MP processor (333 Mflops peak, 6 ns clock)."""
    return BlasPerformanceModel(
        name="cray-ymp",
        # Long-vector rates near peak; big n_½ ⇒ short vectors are slow.
        level1=HockneyRate(r_inf=180e6, n_half=45.0),
        level2=HockneyRate(r_inf=250e6, n_half=35.0),
        level3=HockneyRate(r_inf=310e6, n_half=25.0),
        call_latency=1.5e-6,
    )


def t3d_node_model() -> BlasPerformanceModel:
    """One T3D processing element (DEC Alpha 21064, 150 Mflops peak).

    The tiny direct-mapped write-through cache keeps realized rates far
    under the 150 Mflops peak (mid-90s dense kernels on the 21064
    realized tens of Mflops); the 4-word cache line appears as the
    level-2/3 ``n_½ ≈ 6``.
    """
    return BlasPerformanceModel(
        name="t3d-node",
        level1=HockneyRate(r_inf=15e6, n_half=10.0),
        level2=HockneyRate(r_inf=25e6, n_half=6.0),
        level3=HockneyRate(r_inf=55e6, n_half=6.0),
        call_latency=0.1e-6,
    )


@dataclass(frozen=True)
class T3DNetworkParameters:
    """Communication cost model for the T3D's shmem layer (Section 7.1.4).

    Attributes
    ----------
    put_latency : float
        One-way latency of a shmem put/get (paper: ≈ 1 µs).
    bandwidth : float
        Per-link bandwidth in bytes/second (paper: 300 MB/s).
    broadcast_latency : float
        Software overhead per broadcast stage.
    barrier_per_stage : float
        Cost per stage of the log₂(NP) barrier tree.
    word_bytes : int
        8-byte words throughout.
    """

    put_latency: float = 1.0e-6
    #: Issue gap for back-to-back puts to the same target: the first
    #: message pays the full latency, subsequent ones pipeline behind it.
    put_gap: float = 0.5e-6
    bandwidth: float = 300.0e6
    broadcast_latency: float = 4.0e-6
    barrier_per_stage: float = 6.0e-6
    word_bytes: int = 8

    def put_time(self, words: int, hops: int = 1, count: int = 1) -> float:
        """Transfer of ``words`` 8-byte words as ``count`` pipelined puts."""
        bytes_ = words * self.word_bytes
        count = max(1, count)
        return (self.put_latency * max(1, hops)
                + (count - 1) * self.put_gap
                + bytes_ / self.bandwidth)

    def broadcast_time(self, words: int, nproc: int) -> float:
        """Tree broadcast (shmem_broadcast): log₂(NP) stages, each
        shipping the full payload."""
        if nproc <= 1:
            return 0.0
        stages = ceil(log2(nproc))
        bytes_ = words * self.word_bytes
        return stages * (self.broadcast_latency + bytes_ / self.bandwidth)

    def barrier_time(self, nproc: int) -> float:
        """Barrier over ``nproc`` PEs (log-tree)."""
        if nproc <= 1:
            return 0.0
        return self.barrier_per_stage * ceil(log2(nproc))
