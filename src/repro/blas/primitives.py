"""Counted BLAS-like primitives.

Every kernel executes through NumPy (so it is as fast as a plain NumPy
call) and, when a :class:`FlopCounter` is active, charges the canonical
flop count of the corresponding BLAS operation:

====================  =======================  =================
kernel                BLAS analogue            flops charged
====================  =======================  =================
``dot(x, y)``         ``ddot``                 ``2n − 1``
``axpy(a, x, y)``     ``daxpy``                ``2n``
``scal(a, x)``        ``dscal``                ``n``
``gemv(A, x)``        ``dgemv``                ``2mn``
``ger(a, x, y, A)``   ``dger``                 ``2mn``
``gemm(A, B)``        ``dgemm``                ``2mnk``
``trsm_lower(L, B)``  ``dtrsm``                ``m²·nrhs``
``syrk(A)``           ``dsyrk``                ``m(m+1)k``
====================  =======================  =================

Counting is scoped: ``with counting() as c: …`` tallies only the work done
inside the block, split by category, with zero overhead on the hot path
when no counter is active.  The Schur implementations run all their inner
linear algebra through these kernels, which is how the benchmark harness
validates the paper's closed-form operation counts (eqs. 25–32) against
*measured* counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np
import scipy.linalg as sla

from repro.obs import spans as _obs

__all__ = [
    "FlopCounter",
    "counting",
    "active_counter",
    "charge",
    "dot",
    "axpy",
    "scal",
    "gemv",
    "ger",
    "gemm",
    "trsm_lower",
    "syrk",
]

# Stack of active counters; nested scopes all get charged.
_STACK: list["FlopCounter"] = []


@dataclass
class FlopCounter:
    """Accumulates floating-point operation counts by category.

    ``by_dtype`` splits the same total by the operand dtype the work was
    executed in (``"float32"`` vs ``"float64"``, complex analogues for
    the GKO kernel), so a mixed-precision run reports honestly how many
    of its operations ran at reduced precision.
    """

    total: int = 0
    by_category: dict[str, int] = field(default_factory=dict)
    by_primitive: dict[str, int] = field(default_factory=dict)
    by_dtype: dict[str, int] = field(default_factory=dict)

    def add(self, flops: int, category: str = "misc",
            primitive: str = "misc", dtype: str = "float64") -> None:
        """Record ``flops`` under ``category``, ``primitive``, ``dtype``."""
        flops = int(flops)
        self.total += flops
        self.by_category[category] = self.by_category.get(category, 0) + flops
        self.by_primitive[primitive] = (
            self.by_primitive.get(primitive, 0) + flops)
        self.by_dtype[dtype] = self.by_dtype.get(dtype, 0) + flops

    def reset(self) -> None:
        """Zero all tallies."""
        self.total = 0
        self.by_category.clear()
        self.by_primitive.clear()
        self.by_dtype.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cats = ", ".join(f"{k}={v}" for k, v in sorted(
            self.by_category.items()))
        return f"FlopCounter(total={self.total}, {cats})"


@contextmanager
def counting(counter: FlopCounter | None = None):
    """Context manager activating a flop counter for the enclosed block."""
    c = counter if counter is not None else FlopCounter()
    _STACK.append(c)
    try:
        yield c
    finally:
        _STACK.pop()


def active_counter() -> FlopCounter | None:
    """The innermost active counter, or ``None``."""
    return _STACK[-1] if _STACK else None


# Category applied to subsequent charges; the Schur loop switches this
# between "blocking" and "application" to split costs the way Section 6
# does.
_CATEGORY: list[str] = ["misc"]


@contextmanager
def category(name: str):
    """Attribute all charges inside the block to ``name``.

    When observability is enabled *and* a span is open, the block's wall
    time is also folded into the current span's phase accumulator
    (:func:`repro.obs.record_phase`) — that is how the Schur loop's
    blocking / application / panel split surfaces in ``--profile``
    output without per-call child spans.
    """
    _CATEGORY.append(name)
    if _obs.enabled() and _obs.current_span() is not None:
        t0 = perf_counter()
        try:
            yield
        finally:
            _CATEGORY.pop()
            _obs.record_phase(name, perf_counter() - t0)
    else:
        try:
            yield
        finally:
            _CATEGORY.pop()


def charge(flops: int, primitive: str = "misc",
           dtype: str = "float64") -> None:
    """Charge ``flops`` to every active counter (no-op when none).

    ``dtype`` names the precision the work executes in; call sites in
    reduced-precision kernels pass their operand's ``dtype.name`` so the
    per-dtype tallies stay honest.
    """
    if _STACK:
        cat = _CATEGORY[-1]
        for c in _STACK:
            c.add(flops, cat, primitive, dtype)


# ----------------------------------------------------------------------
# Level 1
# ----------------------------------------------------------------------

def dot(x: np.ndarray, y: np.ndarray) -> float:
    """``xᵀ y`` — charges ``2n − 1`` flops."""
    if _STACK:
        charge(2 * x.shape[0] - 1, "dot", x.dtype.name)
    return float(np.dot(x, y))


def axpy(alpha: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``y ← α x + y`` in place — charges ``2n`` flops."""
    if _STACK:
        charge(2 * x.shape[0], "axpy", y.dtype.name)
    y += alpha * x
    return y


def scal(alpha: float, x: np.ndarray) -> np.ndarray:
    """``x ← α x`` in place — charges ``n`` flops."""
    if _STACK:
        charge(x.size, "scal", x.dtype.name)
    x *= alpha
    return x


# ----------------------------------------------------------------------
# Level 2
# ----------------------------------------------------------------------

def gemv(a: np.ndarray, x: np.ndarray, *, trans: bool = False) -> np.ndarray:
    """``A x`` (or ``Aᵀ x``) — charges ``2mn`` flops."""
    if _STACK:
        charge(2 * a.shape[0] * a.shape[1], "gemv", a.dtype.name)
    return a.T @ x if trans else a @ x


_GER_BLAS = {np.dtype(np.float64): sla.blas.dger,
             np.dtype(np.float32): sla.blas.sger}


def ger(alpha: float, x: np.ndarray, y: np.ndarray,
        a: np.ndarray) -> np.ndarray:
    """Rank-1 update ``A ← A + α x yᵀ`` in place — charges ``2mn`` flops.

    Contiguous real panels go straight to BLAS ``?ger`` (a C-contiguous
    ``A`` is updated through its transpose, which is exactly the
    Fortran-order view the kernel wants) — one fused pass, no ``m × n``
    temporary.  Strided views fall back to an outer-product update.
    """
    if _STACK:
        charge(2 * a.shape[0] * a.shape[1], "ger", a.dtype.name)
    f = _GER_BLAS.get(a.dtype)
    if f is not None:
        if a.flags.c_contiguous:
            f(alpha, y, x, a=a.T, overwrite_a=1)
            return a
        if a.flags.f_contiguous:
            f(alpha, x, y, a=a, overwrite_a=1)
            return a
    np.add(a, np.outer(np.asarray(x) * alpha, y), out=a)
    return a


# ----------------------------------------------------------------------
# Level 3
# ----------------------------------------------------------------------

def gemm(a: np.ndarray, b: np.ndarray, *, out: np.ndarray | None = None,
         accumulate: bool = False) -> np.ndarray:
    """``C (+)= A B`` — charges ``2mnk`` flops."""
    if _STACK:
        m, k = a.shape
        n = b.shape[1] if b.ndim == 2 else 1
        charge(2 * m * n * k, "gemm", a.dtype.name)
    if out is None:
        return a @ b
    if accumulate:
        out += a @ b
    else:
        np.matmul(a, b, out=out)
    return out


def trsm_lower(l: np.ndarray, b: np.ndarray, *,
               trans: bool = False) -> np.ndarray:
    """Solve ``L X = B`` (or ``Lᵀ X = B``) — charges ``m²·nrhs`` flops."""
    if _STACK:
        m = l.shape[0]
        nrhs = b.shape[1] if b.ndim == 2 else 1
        charge(m * m * nrhs, "trsm", l.dtype.name)
    return sla.solve_triangular(l, b, lower=True,
                                trans=1 if trans else 0, check_finite=False)


def syrk(a: np.ndarray) -> np.ndarray:
    """``A Aᵀ`` — charges ``m(m+1)k`` flops (symmetric rank-k update)."""
    if _STACK:
        m, k = a.shape
        charge(m * (m + 1) * k, "syrk", a.dtype.name)
    return a @ a.T
