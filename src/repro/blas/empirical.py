"""Empirical on-host BLAS characterization.

Section 6.5: *"If this is not the case the analysis can be modified to
use an empirical characterization of the primitives performance.  (This
approach was taken when we analyzed the effect of block size choice on
our Cray Y-MP implementations.)"*

:func:`measure_host_model` times NumPy's dot/gemv/ger/gemm on a grid of
shapes and fits a per-level Hockney model by least squares on the
reciprocal rates; the result plugs into the same trade-off analysis as
the parametric Cray models, but describes the machine the tests are
actually running on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.blas.perf_model import BlasPerformanceModel, HockneyRate
from repro.utils.rng import default_rng

__all__ = ["EmpiricalBlasModel", "measure_host_model"]


def _time_call(fn, min_time: float = 2e-3, max_reps: int = 200) -> float:
    """Median-of-repetitions wall time of ``fn()`` in seconds."""
    fn()  # warm-up (allocations, cache)
    times = []
    total = 0.0
    while total < min_time and len(times) < max_reps:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        times.append(dt)
        total += dt
    return float(np.median(times))


def _fit_hockney(lengths: np.ndarray, rates: np.ndarray,
                 floor_rate: float = 1e6) -> HockneyRate:
    """Least-squares fit of ``1/rate = 1/r_∞ + n_½/(r_∞ ℓ)``.

    Linear in ``(1, 1/ℓ)`` against ``1/rate``.
    """
    rates = np.maximum(rates, floor_rate)
    a = np.column_stack([np.ones_like(lengths, dtype=float), 1.0 / lengths])
    coef, *_ = np.linalg.lstsq(a, 1.0 / rates, rcond=None)
    inv_rinf = max(coef[0], 1.0 / (rates.max() * 4.0))
    r_inf = 1.0 / inv_rinf
    n_half = max(coef[1] * r_inf, 0.0)
    return HockneyRate(r_inf=float(r_inf), n_half=float(n_half))


class EmpiricalBlasModel(BlasPerformanceModel):
    """A :class:`BlasPerformanceModel` fitted from host measurements."""


def measure_host_model(*, seed=0, quick: bool = True) -> EmpiricalBlasModel:
    """Time NumPy kernels on this host and fit per-level Hockney models.

    ``quick`` keeps the measurement under ~1 second; the full grid takes
    a few seconds and tightens the fit.
    """
    rng = default_rng(seed)
    lengths = np.array([8, 32, 128, 512, 2048] if quick
                       else [4, 8, 16, 32, 64, 128, 256, 512, 1024,
                             2048, 8192])

    # Level 1: axpy
    l1_rates = []
    for n in lengths:
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        t = _time_call(lambda x=x, y=y: y + 2.0 * x)
        l1_rates.append(2 * n / t)
    level1 = _fit_hockney(lengths.astype(float), np.array(l1_rates))

    # Level 2: gemv with square-ish operands of the given short dimension
    l2_rates = []
    for n in lengths:
        wide = min(4 * n, 4096)
        a = rng.standard_normal((n, wide))
        x = rng.standard_normal(wide)
        t = _time_call(lambda a=a, x=x: a @ x)
        l2_rates.append(2 * n * wide / t)
    level2 = _fit_hockney(lengths.astype(float), np.array(l2_rates))

    # Level 3: gemm with constraining dimension n
    l3_rates = []
    for n in lengths:
        wide = min(4 * n, 4096)
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, wide))
        t = _time_call(lambda a=a, b=b: a @ b)
        l3_rates.append(2 * n * n * wide / t)
    level3 = _fit_hockney(lengths.astype(float), np.array(l3_rates))

    # Per-call overhead from a tiny kernel
    x1 = rng.standard_normal(2)
    latency = _time_call(lambda: x1 @ x1)

    model = EmpiricalBlasModel(
        name="host-empirical",
        level1=level1, level2=level2, level3=level3,
        call_latency=float(latency))

    # Per-elimination-step driver overhead: time a real m = 1 step of
    # the Schur loop and subtract the modeled primitive cost.  On
    # interpreter-driven hosts this fixed cost (allocation, views,
    # dispatch) dominates the small-m_s regime — the analog of the
    # library-call overheads the paper found on the Y-MP BLAS3.
    from repro.core.flops import primitive_calls_for_step
    from repro.core.schur_spd import eliminate_block
    from repro.core.signature import block_schur_signature

    width = 512
    w = block_schur_signature(1)
    upper0 = rng.standard_normal((1, width)) + 5.0
    lower0 = rng.standard_normal((1, width))

    def one_step():
        eliminate_block(np.abs(upper0) + 5.0, lower0.copy(), w)

    t_step = _time_call(one_step)
    modeled = model.time_many(primitive_calls_for_step(1, width))
    # the copy in one_step is measurement harness cost, roughly one axpy
    overhead = max(0.0, t_step - modeled - model.level1.time(width, width))
    return EmpiricalBlasModel(
        name="host-empirical",
        level1=level1, level2=level2, level3=level3,
        call_latency=float(latency),
        step_overhead=float(overhead))
