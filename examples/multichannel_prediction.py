"""Multichannel linear prediction with block Toeplitz normal equations.

The workload that motivates block Toeplitz solvers: fitting an
order-``q`` vector autoregressive predictor to an ``m``-channel signal.
The Yule–Walker normal equations have the *block Toeplitz* coefficient
matrix ``[Γ_{j−i}]`` built from the channel autocovariances, solved here
with the block Schur factorization and cross-checked against the block
Levinson recursion.

Run:  python examples/multichannel_prediction.py
"""

import time

import numpy as np

from repro import SymmetricBlockToeplitz, cholesky
from repro.baselines import block_levinson_solve


def simulate_var(a_coeffs, sigma, steps, rng):
    """Simulate x_t = Σ_k A_k x_{t−k} + w_t, cov(w) = Σ."""
    m = sigma.shape[0]
    order = len(a_coeffs)
    chol = np.linalg.cholesky(sigma)
    x = np.zeros((steps + order, m))
    for t in range(order, steps + order):
        acc = chol @ rng.standard_normal(m)
        for k, a in enumerate(a_coeffs, start=1):
            acc += a @ x[t - k]
        x[t] = acc
    return x[order:]


def sample_autocovariances(x, lags):
    """Biased sample autocovariances Γ̂_k = (1/N) Σ x_{t+k} x_tᵀ."""
    n = x.shape[0]
    return [x[k:].T @ x[:n - k] / n for k in range(lags + 1)]


def main():
    rng = np.random.default_rng(7)
    m, order = 3, 6          # channels, predictor order
    steps = 200_000

    # Ground-truth VAR(2) system.
    a1 = np.array([[0.5, 0.1, 0.0],
                   [0.0, 0.3, 0.2],
                   [0.1, 0.0, 0.4]])
    a2 = np.array([[0.2, 0.0, 0.1],
                   [0.1, 0.1, 0.0],
                   [0.0, 0.2, 0.1]])
    sigma = np.diag([1.0, 0.5, 0.8])

    print(f"simulating a {m}-channel VAR(2) process, {steps} samples …")
    x = simulate_var([a1, a2], sigma, steps, rng)

    # Yule–Walker normal equations for an order-q predictor:
    #   [Γ_{j−i}]_{i,j=1..q} · vec(A) = [Γ_1; …; Γ_q]
    gammas = sample_autocovariances(x, order)
    t = SymmetricBlockToeplitz([0.5 * (gammas[0] + gammas[0].T)]
                               + gammas[1:order])
    rhs = np.vstack([g.T for g in gammas[1:order + 1]])  # (q·m, m)

    print(f"normal-equation matrix: order {t.order} "
          f"(block size {m}, {order} block rows)")

    # --- solve with the block Schur factorization ------------------------
    t0 = time.perf_counter()
    fact = cholesky(t)
    coef = fact.solve(rhs)          # stacked [A_1ᵀ; …; A_qᵀ]
    t_schur = time.perf_counter() - t0

    # --- cross-check with block Levinson ---------------------------------
    t0 = time.perf_counter()
    lev = block_levinson_solve(t, rhs)
    t_lev = time.perf_counter() - t0
    print(f"Schur vs Levinson predictor coefficients agree: "
          f"{np.allclose(coef, lev.x, atol=1e-8)}  "
          f"(schur {t_schur * 1e3:.2f} ms, levinson {t_lev * 1e3:.2f} ms)")

    a_hat = [coef[k * m:(k + 1) * m].T for k in range(order)]
    print(f"‖Â₁ − A₁‖ = {np.linalg.norm(a_hat[0] - a1):.3f}   "
          f"‖Â₂ − A₂‖ = {np.linalg.norm(a_hat[1] - a2):.3f}   "
          f"(sampling error shrinks with more data)")

    # --- prediction error covariance --------------------------------------
    # Σ̂ = Γ₀ − Σ_k Â_k Γ_kᵀ ; should approach the innovation covariance.
    sig_hat = gammas[0].copy()
    for k, a in enumerate(a_hat, start=1):
        sig_hat -= a @ gammas[k].T
    print("innovation covariance (true diagonal): "
          f"{np.diag(sigma)}")
    print("prediction error covariance (estimated diagonal): "
          f"{np.round(np.diag(sig_hat), 3)}")

    # predictor whitening check on held-out data
    y = simulate_var([a1, a2], sigma, 20_000, rng)
    resid = y[order:].copy()
    for k, a in enumerate(a_hat, start=1):
        resid -= y[order - k:-k] @ a.T
    print(f"held-out residual variance per channel: "
          f"{np.round(resid.var(axis=0), 3)}")


if __name__ == "__main__":
    main()
