"""Quickstart: factor and solve a symmetric positive definite block
Toeplitz system with the block Schur algorithm.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SchurOptions,
    ar_block_toeplitz,
    cholesky,
    schur_spd_factor,
    solve,
)


def main():
    rng = np.random.default_rng(0)

    # An SPD block Toeplitz matrix: the autocovariance matrix of a
    # stable 4-channel vector AR process, 32 block rows (order 128).
    t = ar_block_toeplitz(num_blocks=32, block_size=4, seed=0)
    print(f"matrix: order {t.order}, block size {t.block_size}, "
          f"{t.num_blocks} block rows")

    # --- Cholesky factorization T = Rᵀ R --------------------------------
    fact = cholesky(t)
    resid = np.max(np.abs(fact.reconstruct() - t.dense()))
    print(f"factorization residual  max|RᵀR − T| = {resid:.2e}")
    print(f"log det T = {fact.logdet():.6f}")

    # --- solving --------------------------------------------------------
    b = rng.standard_normal(t.order)
    x = fact.solve(b)
    print(f"solve residual          max|Tx − b|  = "
          f"{np.max(np.abs(t.dense() @ x - b)):.2e}")

    # one-call variant (auto-detects SPD / indefinite):
    x2 = solve(t, b)
    print(f"solve() agrees with factored solve:   "
          f"{np.allclose(x, x2)}")

    # --- implementation choices (Section 4/6 of the paper) --------------
    # Pick a block hyperbolic Householder representation and panel width:
    for rep in ("vy1", "vy2", "yty"):
        f = schur_spd_factor(t, options=SchurOptions(representation=rep,
                                                     panel=2))
        err = np.max(np.abs(f.r - fact.r))
        print(f"representation {rep:>4}: factor agrees to {err:.1e}")

    # --- forgoing structure (Section 6.5) --------------------------------
    # Treat the matrix as if its block size were 8 (twice the structural
    # block size) — more flops, bigger level-3 kernels, same factor:
    t8 = t.regroup(8)
    f8 = schur_spd_factor(t8)
    print(f"m_s = 8 factor agrees:  "
          f"{np.allclose(f8.r, fact.r, atol=1e-8)}")


if __name__ == "__main__":
    main()
