"""Distributed-memory study on the simulated Cray T3D (Section 7).

Runs the block Schur factorization through the machine simulator under
the three generator data-distribution schemes of Figure 5, verifies the
distributed numerics against the serial factorization — on both the
simulated backend and, where the platform allows it, the real
multiprocess backend (one worker process per PE) — and prints the
time/phase breakdowns behind the paper's Experiments 1–3.

Run:  python examples/t3d_distribution_study.py
"""

import numpy as np

import repro.engine as engine
from repro import kms_toeplitz, schur_spd_factor
from repro.parallel import (
    analytic_factor_time,
    mp_factorization,
    multiprocess_available,
    simulate_factorization,
)


def verify_backends(t, nproc, b_values):
    """Both backends reproduce the serial factor under every scheme."""
    serial = schur_spd_factor(t).r
    mp_ok, mp_reason = multiprocess_available()
    for b in b_values:
        pl = engine.plan(t, nproc=nproc, distribution_b=b,
                         use_cache=False)
        sim = simulate_factorization(t, plan=pl)
        err = np.max(np.abs(sim.r - serial))
        line = (f"b={b}: |R_sim − R_serial| = {err:.2e} "
                f"({sim.time * 1e3:.2f} ms virtual)")
        if mp_ok:
            real = mp_factorization(t, plan=pl)
            rerr = np.max(np.abs(real.r - serial))
            line += (f";  real backend {rerr:.2e} "
                     f"({real.wall_seconds * 1e3:.2f} ms wall, "
                     f"{real.nproc} workers)")
        print(line)
    if not mp_ok:
        print(f"(real multiprocess backend unavailable: {mp_reason})")


def sweep(t, nproc, b_values, label):
    print(f"\n--- {label} "
          f"(n={t.order}, m={t.block_size}, NP={nproc}) ---")
    print(f"{'b':>6}  {'scheme':>8}  {'sim time':>10}  "
          f"{'analytic':>10}  breakdown of slowest PE")
    for b in b_values:
        run = simulate_factorization(t, nproc=nproc, b=b, collect=False)
        ana = analytic_factor_time(t.order, t.block_size, nproc, b=b)
        scheme = "v3" if b < 1 else ("v1" if b == 1 else "v2")
        bd = ", ".join(f"{k} {v * 1e3:.1f}ms"
                       for k, v in sorted(run.breakdown().items(),
                                          key=lambda kv: -kv[1])[:3])
        print(f"{b:>6}  {scheme:>8}  {run.time * 1e3:8.2f}ms  "
              f"{ana.total * 1e3:8.2f}ms  {bd}")


def main():
    # Verify the distributed algorithm computes the serial factor,
    # planning each configuration through the engine (the plan fixes
    # nproc, the distribution and the representation; both backends
    # then execute the identical schedule).
    verify_backends(kms_toeplitz(128, 0.5).regroup(4),
                    nproc=4, b_values=(1, 2, 0.5))

    # Scaled-down versions of the paper's three experiments
    # (run `pytest benchmarks/ --benchmark-only` for the full figures).
    sweep(kms_toeplitz(512, 0.5), nproc=16,
          b_values=(1, 2, 4, 8, 16, 32),
          label="Experiment 1 (point Toeplitz)")
    sweep(kms_toeplitz(512, 0.5).regroup(8), nproc=16,
          b_values=(0.25, 0.5, 1, 2, 4),
          label="Experiment 2 (m=8)")
    sweep(kms_toeplitz(1024, 0.5).regroup(32), nproc=16,
          b_values=(1, 0.5, 0.25, 0.125),
          label="Experiment 3 (m=32, spreading)")


if __name__ == "__main__":
    main()
