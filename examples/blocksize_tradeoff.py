"""The structural-vs-algorithmic block size trade-off (Section 6.5).

Measures the real wall-clock factorization time at several algorithmic
block sizes ``m_s``, fits an empirical BLAS performance model of *this*
host (the approach the authors used for their Y-MP analysis), and
compares the model's predicted optimum with the measured one.

Run:  python examples/blocksize_tradeoff.py
"""

import time

import numpy as np

from repro import kms_toeplitz, schur_spd_factor
from repro.blas.cray import cray_ymp_model
from repro.blas.empirical import measure_host_model
from repro.core.flops import nominal_total_flops
from repro.core.regroup import choose_block_size


def measure(t, ms_values, repeats=3):
    out = {}
    for ms in ms_values:
        ts = t.regroup(ms)
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            schur_spd_factor(ts)
            best = min(best, time.perf_counter() - t0)
        out[ms] = best
    return out


def main():
    n = 1024
    ms_values = (1, 2, 4, 8, 16, 32, 64)
    t = kms_toeplitz(n, 0.5)

    print(f"factoring a {n}×{n} point Toeplitz matrix at several "
          f"algorithmic block sizes m_s:\n")
    measured = measure(t, ms_values)
    print(f"{'m_s':>4}  {'time':>10}  {'flops (4·m_s·n²)':>18}  "
          f"{'achieved MFLOPS':>16}")
    for ms in ms_values:
        fl = nominal_total_flops(n, ms)
        print(f"{ms:>4}  {measured[ms] * 1e3:8.2f}ms  {fl:18.3e}  "
              f"{fl / measured[ms] / 1e6:16.1f}")
    best_measured = min(measured, key=measured.get)
    print(f"\nmeasured optimum: m_s = {best_measured} "
          f"(speedup over m_s=1: "
          f"{measured[1] / measured[best_measured]:.2f}×)")

    print("\nfitting an empirical BLAS model of this host "
          "(quick calibration) …")
    host = measure_host_model(quick=True)
    best_model, preds = choose_block_size(n, 1, host,
                                          candidates=list(ms_values))
    print(f"{'m_s':>4}  {'modeled time':>13}  {'modeled MFLOPS':>15}")
    for p in preds:
        print(f"{p.block_size:>4}  {p.seconds * 1e3:11.2f}ms  "
              f"{p.mflops:15.1f}")
    print(f"host-model recommendation: m_s = {best_model}")

    print("\nthe paper's Cray Y-MP model for comparison "
          "(MFLOPS rise steeply with m_s — Figure 10):")
    _, ymp = choose_block_size(4096, 1, cray_ymp_model(),
                               candidates=[1, 2, 4, 8, 16, 32])
    for p in ymp:
        print(f"  m_s={p.block_size:<3} {p.mflops:8.1f} MFLOPS")


if __name__ == "__main__":
    main()
