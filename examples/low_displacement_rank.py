"""Beyond Toeplitz: factoring any low displacement-rank matrix.

The paper's algorithm is one instance of the Kailath displacement
framework [8]: any symmetric matrix whose displacement ``A − ZᵀAZ`` has
small rank α factors in ``O(α n²)`` by the same generator/hyperbolic-
reflector recursion.  A Toeplitz matrix has α = 2; realistic
"almost-Toeplitz" matrices — a Toeplitz covariance plus a few rank-one
corrections from calibration errors or known interferers — have α only
slightly larger and keep the fast factorization.

Run:  python examples/low_displacement_rank.py
"""

import time

import numpy as np

from repro import (
    generalized_schur_factor,
    generator_from_dense,
    kms_toeplitz,
)
from repro.core.displacement_rank import displacement_rank


def main():
    rng = np.random.default_rng(3)
    n = 512

    # A Toeplitz covariance contaminated by two rank-one interferers.
    base = kms_toeplitz(n, 0.7).dense()
    v1 = np.sin(0.31 * np.arange(n)) / np.sqrt(n)
    v2 = rng.standard_normal(n) / np.sqrt(n)
    a = base + 6.0 * np.outer(v1, v1) + 2.0 * np.outer(v2, v2)

    alpha = displacement_rank(a)
    print(f"matrix: {n}×{n} Toeplitz + 2 rank-one terms")
    print(f"displacement rank α = {alpha}   (pure Toeplitz would be 2; "
          f"each rank-one term adds ≤ 2)")

    g, w = generator_from_dense(a)
    print(f"generator: {g.shape[0]} × {g.shape[1]}, signature {w}")

    t0 = time.perf_counter()
    fact = generalized_schur_factor(g, w)
    t_schur = time.perf_counter() - t0

    t0 = time.perf_counter()
    import scipy.linalg as sla
    r_dense = sla.cholesky(a)
    t_dense = time.perf_counter() - t0

    err = np.max(np.abs(fact.reconstruct() - a))
    print(f"generalized Schur: {t_schur * 1e3:8.2f} ms   "
          f"max|RᵀDR − A| = {err:.2e}")
    print(f"dense Cholesky:    {t_dense * 1e3:8.2f} ms")
    np.testing.assert_allclose(np.abs(fact.r), np.abs(r_dense),
                               atol=1e-7 * np.linalg.norm(a))

    # Empirical scaling: the structured path grows like n², dense like
    # n³ (LAPACK's constant is far smaller, so the crossover sits at
    # large n — complexity, not constants, is the point here).
    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    n2 = 2 * n
    base2 = kms_toeplitz(n2, 0.7).dense()
    w1 = np.sin(0.31 * np.arange(n2)) / np.sqrt(n2)
    a2 = base2 + 6.0 * np.outer(w1, w1)
    g2, sig2 = generator_from_dense(a2)
    t_schur2 = timed(lambda: generalized_schur_factor(g2, sig2))
    t_dense2 = timed(lambda: sla.cholesky(a2))
    print(f"doubling n: structured time ×{t_schur2 / t_schur:.1f} "
          f"(O(n²) ⇒ ≈ 4), dense ×{t_dense2 / t_dense:.1f} "
          f"(O(n³) ⇒ ≈ 8)")

    b = rng.standard_normal(n)
    x = fact.solve(b)
    print(f"solve residual: max|Ax − b| = {np.max(np.abs(a @ x - b)):.2e}")


if __name__ == "__main__":
    main()
