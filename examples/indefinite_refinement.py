"""Section 8 end-to-end: indefinite Toeplitz systems with singular
principal minors, solved by perturbed factorization + iterative
refinement.

Reproduces the paper's worked example (eq. 50) and then runs the same
pipeline on a larger randomly generated singular-minor system.

Run:  python examples/indefinite_refinement.py
"""

import numpy as np

from repro import (
    ldlt,
    paper_example_matrix,
    singular_minor_toeplitz,
    solve_refined,
)
from repro.baselines import pcg


def show_case(name, t, x_true):
    d = t.dense()
    b = d @ x_true
    print(f"\n=== {name} (order {t.order}) ===")
    print(f"leading 2×2 minor determinant: "
          f"{np.linalg.det(d[:2, :2]):.2e}")

    fact = ldlt(t)
    for ev in fact.perturbations:
        print(f"perturbation at scalar pivot {ev.scalar_index}: "
              f"hyperbolic norm {ev.norm_before:.2e} → "
              f"{ev.norm_after:.2e} (relative δ = {ev.delta:.2e})")
    print(f"interchanges: {len(fact.interchanges)}, "
          f"inertia (n₊, n₋) = {fact.inertia}")
    print(f"‖(RᵀDR − T)‖ / ‖T‖ = "
          f"{np.max(np.abs(fact.reconstruct() - d)) / np.linalg.norm(d):.2e}"
          f"   (the O(∛ε) designed backward error)")

    res = solve_refined(t, b, keep_history=True)
    print("iterative refinement trace (‖x − x_i‖):")
    for i, xi in enumerate(res.history, start=1):
        print(f"  x_{i}: {np.linalg.norm(x_true - xi):.4e}")
    print(f"converged in {res.iterations} correction steps "
          f"(paper: typically two suffice)")

    cg = pcg(t, b, preconditioner=fact, tol=1e-12)
    print(f"preconditioned CG comparator: {cg.iterations} iterations, "
          f"error {np.linalg.norm(cg.x - x_true):.2e}")


def main():
    # The paper's 6×6 example: first row (1, 1, .5297, .6711, .0077,
    # .3834) with the singular minor [[1, 1], [1, 1]].
    show_case("paper eq. (50)", paper_example_matrix(), np.ones(6))

    # A random 40×40 symmetric Toeplitz with an exactly singular leading
    # 2×2 minor.
    rng = np.random.default_rng(1)
    t = singular_minor_toeplitz(40, minor=2, seed=5)
    show_case("random singular-minor system", t,
              rng.standard_normal(40))


if __name__ == "__main__":
    main()
