"""Automated configuration choice (the paper's §7 closing program).

The paper ends by saying that a performance analysis over problem size,
block size and machine size "decides which of the three schemes is best
suited".  `repro.tuning` is that analysis; this example runs it across
the paper's three experiment configurations and verifies the
recommendations against the event simulator.

Run:  python examples/autotune.py
"""

from repro import kms_toeplitz
from repro.parallel import simulate_factorization
from repro.tuning import choose_distribution, tune


def main():
    experiments = [
        ("Experiment 1 (point Toeplitz)", 4096, 1, 16, "b = 16"),
        ("Experiment 2 (m = 8)", 4096, 8, 64, "b = 1 (Version 1)"),
        ("Experiment 3 (m = 32)", 4096, 32, 64, "spread (Version 3)"),
    ]
    for name, n, m, nproc, paper in experiments:
        best, choices = choose_distribution(n, m, nproc)
        scheme = ("Version 3, spread " + str(int(round(1 / best.b)))
                  if best.b < 1 else
                  ("Version 1" if best.b == 1
                   else f"Version 2, b = {int(best.b)}"))
        print(f"{name}: n={n}, m={m}, NP={nproc}")
        print(f"  tuner pick : {scheme}  "
              f"({best.predicted_seconds * 1e3:.1f} ms predicted)")
        print(f"  paper found: {paper}")
        top3 = ", ".join(f"b={c.b}:{c.predicted_seconds * 1e3:.1f}ms"
                         for c in choices[:3])
        print(f"  top 3      : {top3}\n")

    # verify one recommendation in the event simulator (scaled down)
    n, m, nproc = 512, 8, 16
    t = kms_toeplitz(n, 0.5).regroup(m)
    best, choices = choose_distribution(n, m, nproc, verify_top=3,
                                        matrix=t)
    print(f"simulator-verified pick for n={n}, m={m}, NP={nproc}: "
          f"b = {best.b}")
    for c in choices[:3]:
        sim = (f"{c.simulated_seconds * 1e3:.2f} ms simulated"
               if c.simulated_seconds is not None else "not simulated")
        print(f"  b={c.b:<6} predicted "
              f"{c.predicted_seconds * 1e3:.2f} ms, {sim}")

    # end-to-end: full configuration for a serial run on this machine
    res = tune(1024, 1, nproc=1)
    print(f"\nserial configuration for n=1024 point Toeplitz "
          f"(T3D node model): {res.describe()}")

    # sanity: the recommended parallel configuration really is fastest
    # among the alternatives it beat (spot check two)
    best, choices = choose_distribution(1024, 8, 16)
    t = kms_toeplitz(1024, 0.5).regroup(8)
    t_best = simulate_factorization(t, nproc=16, b=best.b,
                                    collect=False).time
    worst = choices[-1]
    t_worst = simulate_factorization(t, nproc=16, b=worst.b,
                                     collect=False).time
    print(f"\nspot check n=1024 m=8 NP=16: picked b={best.b} "
          f"({t_best * 1e3:.1f} ms) vs rejected b={worst.b} "
          f"({t_worst * 1e3:.1f} ms)")
    assert t_best < t_worst


if __name__ == "__main__":
    main()
