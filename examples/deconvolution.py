"""Channel equalization: a *nonsymmetric* block Toeplitz system.

An FIR channel turns a transmitted multichannel signal into
``y = H x`` where ``H`` is block Toeplitz but **not symmetric** (the
channel is causal).  Recovering ``x`` is a deconvolution — solved here
with the GKO Cauchy-like LU (`solve_toeplitz_gko`), the displacement-
framework companion of the paper's symmetric Schur algorithm, with
partial pivoting and no symmetry or definiteness assumptions.

Run:  python examples/deconvolution.py
"""

import numpy as np

from repro import solve_toeplitz_gko
from repro.toeplitz import BlockToeplitz


def build_channel_matrix(taps, p):
    """Block Toeplitz H with H[i, j] = taps[i − j] (causal channel)."""
    m = taps[0].shape[0]
    zero = np.zeros((m, m))
    col = [taps[i] if i < len(taps) else zero for i in range(p)]
    row = [taps[0]] + [zero] * (p - 1)
    return BlockToeplitz(col, row)


def main():
    rng = np.random.default_rng(11)
    m = 2            # channels
    p = 128          # symbols
    taps = [np.eye(m) + 0.1 * rng.standard_normal((m, m)),
            0.5 * rng.standard_normal((m, m)),
            0.2 * rng.standard_normal((m, m))]

    h = build_channel_matrix(taps, p)
    print(f"channel matrix: {h.order}×{h.order} block Toeplitz "
          f"(m={m}, {len(taps)} taps), nonsymmetric: "
          f"{not np.allclose(h.dense(), h.dense().T)}")

    x_true = rng.choice([-1.0, 1.0], size=h.order)   # BPSK-ish symbols
    noise = 1e-6 * rng.standard_normal(h.order)
    y = h.dense() @ x_true + noise

    x_hat = solve_toeplitz_gko(h, y)
    err = np.max(np.abs(x_hat - x_true))
    print(f"equalized with GKO Cauchy-like LU: max symbol error "
          f"{err:.2e}")
    recovered = np.sign(x_hat)
    print(f"symbol decisions correct: "
          f"{int(np.sum(recovered == x_true))}/{h.order}")

    ref = np.linalg.solve(h.dense(), y)
    print(f"agreement with dense LU: "
          f"{np.max(np.abs(x_hat - ref)):.2e}")

    # --- noisy case: structured least squares -----------------------------
    # With real noise the right formulation is min ‖Cx − y‖₂ over the
    # *tall* convolution operator; its normal equations are exactly block
    # Toeplitz, solved by the SPD Schur factorization (+ semi-normal
    # refinement).
    from repro.toeplitz import toeplitz_lstsq

    n_in = 200
    x_true = rng.choice([-1.0, 1.0], size=n_in * m)
    taps_arr = np.stack(taps)
    from repro.toeplitz import ConvolutionOperator
    op = ConvolutionOperator(taps_arr, n_in)
    y_noisy = op.matvec(x_true) + 0.05 * rng.standard_normal(op.shape[0])
    x_ls = toeplitz_lstsq(taps_arr, y_noisy, n_in)
    ref, *_ = np.linalg.lstsq(op.dense(), y_noisy, rcond=None)
    print(f"\nnoisy LS deconvolution (n_in={n_in}, SNR ~ 26 dB):")
    print(f"  structured LS vs dense lstsq: "
          f"{np.max(np.abs(x_ls - ref)):.2e}")
    print(f"  symbol decisions correct: "
          f"{int(np.sum(np.sign(x_ls) == x_true))}/{n_in * m}")


if __name__ == "__main__":
    main()
