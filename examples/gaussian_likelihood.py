"""Exact Gaussian likelihood of a long-memory time series in O(m·n)
memory via the streaming Schur factorization.

Evaluating the exact likelihood of a stationary Gaussian process needs
``xᵀT⁻¹x`` and ``log det T`` for a (block) Toeplitz covariance ``T`` —
the classical application of Schur/Levinson recursions.  The streaming
whitener never materializes the O(n²) triangular factor, so maximum-
likelihood estimation scales to long series.

Here: estimate the Hurst index of fractional Gaussian noise by
maximizing the streamed exact likelihood over a grid.

Run:  python examples/gaussian_likelihood.py
"""

import numpy as np

from repro import gaussian_loglikelihood
from repro.toeplitz import fgn_toeplitz


def sample_fgn(n, hurst, rng):
    """Exact fGn sample via Cholesky of the covariance (fine at this n)."""
    t = fgn_toeplitz(n, hurst)
    c = np.linalg.cholesky(t.dense())
    return c @ rng.standard_normal(n)


def main():
    rng = np.random.default_rng(42)
    n = 1024
    h_true = 0.78

    print(f"sampling fractional Gaussian noise: n={n}, H={h_true}")
    x = sample_fgn(n, h_true, rng)

    grid = np.round(np.arange(0.55, 0.96, 0.025), 3)
    print("\nexact log-likelihood over a Hurst grid "
          "(streaming block Schur, never storing R):")
    lls = []
    for h in grid:
        t = fgn_toeplitz(n, h).regroup(8)   # m_s = 8: level-3 kernels
        ll = gaussian_loglikelihood(t, x)
        lls.append(ll)
        bar = "#" * max(0, int(60 + (ll - max(lls)) / 4))
        print(f"  H={h:5.3f}  logL={ll:12.3f}  {bar}")

    h_hat = grid[int(np.argmax(lls))]
    print(f"\nmaximum-likelihood estimate: Ĥ = {h_hat} "
          f"(true H = {h_true})")
    assert abs(h_hat - h_true) < 0.06


if __name__ == "__main__":
    main()
