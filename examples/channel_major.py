"""Channel-major (Toeplitz-block) covariance solves.

Multichannel recordings are often stored channel-major — all samples of
sensor 1, then sensor 2, … — which makes the joint covariance matrix
*Toeplitz-block* (a grid of Toeplitz blocks) rather than block Toeplitz.
The two layouts are the same matrix under the perfect-shuffle
permutation (ref. [2] of the paper), so the block Schur machinery
applies after a shuffle.  Scenario: optimal (Wiener) weights for
estimating one sensor's next sample from all sensors' recent past.

Run:  python examples/channel_major.py
"""

import numpy as np

from repro import ar_block_toeplitz
from repro.toeplitz import SymmetricToeplitzBlock


def main():
    rng = np.random.default_rng(8)
    m, lags = 3, 32            # sensors, window length

    # Stationary cross-covariances γ(k) from a stable VAR model.
    base = ar_block_toeplitz(lags + 1, m, seed=4)
    gammas = np.stack([np.array(base.top_blocks[k])
                       for k in range(lags + 1)])

    tb = SymmetricToeplitzBlock.from_cross_covariances(gammas[:lags])
    print(f"channel-major covariance: {tb.order}×{tb.order} "
          f"({m} sensors × {lags} lags), Toeplitz-block layout")

    d = tb.dense()
    # in the stored (channel-major) order the m-block-diagonal structure
    # of the shuffled form is absent: consecutive lags×lags blocks along
    # a "diagonal" belong to different channel pairs
    same = np.allclose(d[:lags, lags:2 * lags],
                       d[lags:2 * lags, 2 * lags:3 * lags])
    print(f"matrix is NOT block Toeplitz as stored: {not same}")
    perm = tb.permutation()
    bt = tb.to_block_toeplitz()
    print(f"after the perfect shuffle it is: "
          f"{np.allclose(d[np.ix_(perm, perm)], bt.dense())}")

    # Wiener weights: T w = r.  With window samples x_s(τ+j),
    # j = 0 … lags−1, and target x₀(τ+lags), the cross-covariances are
    # r[(s, j)] = E[x₀(τ+lags) x_s(τ+j)] = γ(lags−j)[0, s].
    r = np.empty(tb.order)
    for s in range(m):
        for j in range(lags):
            r[s * lags + j] = gammas[lags - j][0, s]
    w = tb.solve(r)
    print(f"solved the channel-major normal equations: "
          f"residual {np.max(np.abs(d @ w - r)):.2e}")

    # prediction-error variance = γ₀[0,0] − rᵀ w (must be positive and
    # below the raw variance)
    pev = gammas[0][0, 0] - r @ w
    print(f"raw variance of sensor 0:        {gammas[0][0, 0]:.4f}")
    print(f"prediction error variance:       {pev:.4f}")
    assert 0 < pev < gammas[0][0, 0]


if __name__ == "__main__":
    main()
