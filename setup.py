"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` / ``python setup.py develop`` work on environments
whose setuptools predates PEP-660 editable wheels (no ``wheel`` package
available offline).
"""

from setuptools import setup

setup()
